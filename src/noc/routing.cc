/**
 * @file
 * Routing algorithm implementations.
 */

#include "noc/routing.hh"

#include <algorithm>

#include "common/log.hh"

namespace tenoc
{

unsigned
RoutingAlgorithm::dorStep(NodeId cur, NodeId target, bool x_first) const
{
    const unsigned cx = topo_.xOf(cur);
    const unsigned cy = topo_.yOf(cur);
    const unsigned tx = topo_.xOf(target);
    const unsigned ty = topo_.yOf(target);

    if (cx == tx && cy == ty)
        return PORT_EJECT;

    if (x_first) {
        if (cx != tx)
            return cx < tx ? DIR_EAST : DIR_WEST;
        return cy < ty ? DIR_SOUTH : DIR_NORTH;
    }
    if (cy != ty)
        return cy < ty ? DIR_SOUTH : DIR_NORTH;
    return cx < tx ? DIR_EAST : DIR_WEST;
}

void
DorRouting::initPacket(Packet &pkt, Rng &rng) const
{
    (void)rng;
    pkt.mode = x_first_ ? RouteMode::XY : RouteMode::YX;
    pkt.intermediate = INVALID_NODE;
    pkt.phase2 = false;
}

unsigned
DorRouting::route(NodeId cur, Packet &pkt) const
{
    return dorStep(cur, pkt.dst, x_first_);
}

CheckerboardRouting::CheckerboardRouting(const Topology &topo)
    : RoutingAlgorithm(topo)
{
    tenoc_assert(topo.params().checkerboardRouters,
                 "checkerboard routing requires a checkerboard mesh");
}

std::vector<NodeId>
CheckerboardRouting::twoPhaseCandidates(NodeId src, NodeId dst) const
{
    const unsigned sx = topo_.xOf(src);
    const unsigned sy = topo_.yOf(src);
    const unsigned dx = topo_.xOf(dst);
    const unsigned dy = topo_.yOf(dst);

    const unsigned x_lo = std::min(sx, dx);
    const unsigned x_hi = std::max(sx, dx);
    const unsigned y_lo = std::min(sy, dy);
    const unsigned y_hi = std::max(sy, dy);

    std::vector<NodeId> out;
    for (unsigned iy = y_lo; iy <= y_hi; ++iy) {
        if (iy == sy)
            continue; // waypoint must not share the source row
        for (unsigned ix = x_lo; ix <= x_hi; ++ix) {
            // Even number of columns from the source (Sec. IV-B):
            // together with full-router parity this puts the YX turn
            // at (sx, iy) on a full router.
            if ((ix > sx ? ix - sx : sx - ix) % 2 != 0)
                continue;
            const NodeId cand = topo_.nodeAt(ix, iy);
            if (topo_.isHalfRouter(cand))
                continue;
            // The XY leg turns at (dx, iy) whenever both of its
            // dimensions are non-degenerate; that node must be a full
            // router too.  Parity only guarantees it for half-router
            // sources — a full-router source whose minimal quadrant
            // offers only half-router XY turn columns (e.g. rows
            // hugging a mesh edge) would otherwise be handed a
            // waypoint whose second leg turns illegally.
            if (ix != dx && iy != dy &&
                topo_.isHalfRouter(topo_.nodeAt(dx, iy)))
                continue;
            out.push_back(cand);
        }
    }
    return out;
}

void
CheckerboardRouting::initPacket(Packet &pkt, Rng &rng) const
{
    pkt.intermediate = INVALID_NODE;
    pkt.phase2 = false;

    const unsigned sx = topo_.xOf(pkt.src);
    const unsigned sy = topo_.yOf(pkt.src);
    const unsigned dx = topo_.xOf(pkt.dst);
    const unsigned dy = topo_.yOf(pkt.dst);

    // Straight routes never turn; XY covers both.
    if (sx == dx || sy == dy) {
        pkt.mode = RouteMode::XY;
        return;
    }

    // XY turns at (dx, sy); YX turns at (sx, dy).
    if (canTurnAt(topo_.nodeAt(dx, sy))) {
        pkt.mode = RouteMode::XY;
        return;
    }
    if (canTurnAt(topo_.nodeAt(sx, dy))) {
        // Case 1: the single header bit selects YX (Sec. IV-B).
        pkt.mode = RouteMode::YX;
        return;
    }

    // Case 2: both DOR turn nodes are half-routers; route via a random
    // intermediate full router (YX then XY).
    auto candidates = twoPhaseCandidates(pkt.src, pkt.dst);
    if (candidates.empty()) {
        tenoc_panic("no feasible checkerboard route from node ",
                    pkt.src, " (", sx, ",", sy, ") to node ", pkt.dst,
                    " (", dx, ",", dy,
                    "); full-to-full odd-distance pairs are not "
                    "routable on a checkerboard mesh");
    }
    pkt.mode = RouteMode::TWO_PHASE;
    pkt.intermediate = candidates[rng.nextRange(candidates.size())];
}

unsigned
CheckerboardRouting::route(NodeId cur, Packet &pkt) const
{
    if (pkt.mode == RouteMode::TWO_PHASE && !pkt.phase2 &&
        cur == pkt.intermediate) {
        // Waypoint reached: switch to the XY leg.  Unlike Valiant
        // routing the packet is not ejected here; it turns in place at
        // a full router (Sec. IV-B, footnote 5).
        pkt.phase2 = true;
    }

    NodeId target = pkt.dst;
    bool x_first = true;
    switch (pkt.mode) {
      case RouteMode::XY:
        x_first = true;
        break;
      case RouteMode::YX:
        x_first = false;
        break;
      case RouteMode::TWO_PHASE:
        if (pkt.phase2) {
            x_first = true;
        } else {
            target = pkt.intermediate;
            x_first = false;
        }
        break;
      case RouteMode::TORUS_XY:
      case RouteMode::TORUS_YX:
        tenoc_panic("torus route mode reached checkerboard routing");
    }

    unsigned port = dorStep(cur, target, x_first);
    tenoc_assert(!(port == PORT_EJECT && target != pkt.dst),
                 "two-phase packet ejected at waypoint");
    return port;
}

namespace
{

/** Full-router-only algorithms cannot run on checkerboard meshes. */
void
requireFullRouters(const Topology &topo, const char *algo)
{
    if (topo.params().checkerboardRouters) {
        tenoc_fatal(algo, " routing may turn at any router and "
                    "cannot run on a checkerboard (half-router) mesh; "
                    "use checkerboard routing instead");
    }
}

} // namespace

O1TurnRouting::O1TurnRouting(const Topology &topo)
    : RoutingAlgorithm(topo)
{
    requireFullRouters(topo, "O1TURN");
}

void
O1TurnRouting::initPacket(Packet &pkt, Rng &rng) const
{
    pkt.intermediate = INVALID_NODE;
    pkt.phase2 = false;
    pkt.mode = rng.nextBool(0.5) ? RouteMode::XY : RouteMode::YX;
}

unsigned
O1TurnRouting::route(NodeId cur, Packet &pkt) const
{
    return dorStep(cur, pkt.dst, pkt.mode == RouteMode::XY);
}

RommRouting::RommRouting(const Topology &topo) : RoutingAlgorithm(topo)
{
    requireFullRouters(topo, "ROMM");
}

void
RommRouting::initPacket(Packet &pkt, Rng &rng) const
{
    pkt.mode = RouteMode::TWO_PHASE;
    pkt.phase2 = false;
    const unsigned sx = topo_.xOf(pkt.src);
    const unsigned sy = topo_.yOf(pkt.src);
    const unsigned dx = topo_.xOf(pkt.dst);
    const unsigned dy = topo_.yOf(pkt.dst);
    const unsigned x_lo = std::min(sx, dx);
    const unsigned x_hi = std::max(sx, dx);
    const unsigned y_lo = std::min(sy, dy);
    const unsigned y_hi = std::max(sy, dy);
    const unsigned ix = x_lo +
        static_cast<unsigned>(rng.nextRange(x_hi - x_lo + 1));
    const unsigned iy = y_lo +
        static_cast<unsigned>(rng.nextRange(y_hi - y_lo + 1));
    pkt.intermediate = topo_.nodeAt(ix, iy);
    if (pkt.intermediate == pkt.src)
        pkt.phase2 = true; // degenerate: straight to phase 2
}

unsigned
RommRouting::route(NodeId cur, Packet &pkt) const
{
    if (!pkt.phase2 && cur == pkt.intermediate)
        pkt.phase2 = true;
    const NodeId target = pkt.phase2 ? pkt.dst : pkt.intermediate;
    const unsigned port = dorStep(cur, target, true);
    tenoc_assert(!(port == PORT_EJECT && target != pkt.dst),
                 "ROMM packet ejected at waypoint");
    return port;
}

ValiantRouting::ValiantRouting(const Topology &topo)
    : RoutingAlgorithm(topo)
{
    requireFullRouters(topo, "VALIANT");
}

void
ValiantRouting::initPacket(Packet &pkt, Rng &rng) const
{
    pkt.mode = RouteMode::TWO_PHASE;
    pkt.phase2 = false;
    pkt.intermediate =
        static_cast<NodeId>(rng.nextRange(topo_.numNodes()));
    if (pkt.intermediate == pkt.src)
        pkt.phase2 = true;
}

unsigned
ValiantRouting::route(NodeId cur, Packet &pkt) const
{
    if (!pkt.phase2 && cur == pkt.intermediate)
        pkt.phase2 = true;
    const NodeId target = pkt.phase2 ? pkt.dst : pkt.intermediate;
    const unsigned port = dorStep(cur, target, true);
    tenoc_assert(!(port == PORT_EJECT && target != pkt.dst),
                 "Valiant packet ejected at waypoint");
    return port;
}

TorusRouting::TorusRouting(const Topology &topo, bool x_first)
    : RoutingAlgorithm(topo), x_first_(x_first)
{
    tenoc_assert(topo.isTorus(),
                 "torus routing requires a torus topology");
}

Direction
TorusRouting::ringDirection(unsigned c, unsigned t, unsigned size,
                            bool x_dim)
{
    tenoc_assert(c != t && c < size && t < size,
                 "ringDirection needs distinct on-ring coordinates");
    // Hops the positive way around (E / S) vs the negative way (W / N).
    const unsigned fwd = (t + size - c) % size;
    const unsigned bwd = size - fwd;
    const bool positive = fwd <= bwd; // tie prefers EAST / SOUTH
    if (x_dim)
        return positive ? DIR_EAST : DIR_WEST;
    return positive ? DIR_SOUTH : DIR_NORTH;
}

void
TorusRouting::initPacket(Packet &pkt, Rng &rng) const
{
    (void)rng;
    pkt.mode = x_first_ ? RouteMode::TORUS_XY : RouteMode::TORUS_YX;
    pkt.intermediate = INVALID_NODE;
    pkt.phase2 = false;
    pkt.dateline = false;
    pkt.ringDim = x_first_ ? 0 : 1;
}

unsigned
TorusRouting::route(NodeId cur, Packet &pkt) const
{
    const unsigned cx = topo_.xOf(cur);
    const unsigned cy = topo_.yOf(cur);
    const unsigned tx = topo_.xOf(pkt.dst);
    const unsigned ty = topo_.yOf(pkt.dst);
    if (cx == tx && cy == ty)
        return PORT_EJECT;

    // Which ring does this hop travel?  0 = the row (X) ring, 1 = the
    // column (Y) ring, in dimension order.
    unsigned dim;
    if (x_first_)
        dim = cx != tx ? 0 : 1;
    else
        dim = cy != ty ? 1 : 0;
    if (dim != pkt.ringDim) {
        // New ring: the dateline discipline restarts in class 0.
        pkt.ringDim = static_cast<std::uint8_t>(dim);
        pkt.dateline = false;
    }

    const Direction d = dim == 0
        ? ringDirection(cx, tx, topo_.cols(), true)
        : ringDirection(cy, ty, topo_.rows(), false);

    // Crossing the ring's wrap link: switch to the dateline class now,
    // before RC derives the outgoing VC class, so the wrap link itself
    // carries class 1 (see the class-level comment in routing.hh).
    const bool wraps = (d == DIR_EAST && cx == topo_.cols() - 1) ||
                       (d == DIR_WEST && cx == 0) ||
                       (d == DIR_SOUTH && cy == topo_.rows() - 1) ||
                       (d == DIR_NORTH && cy == 0);
    if (wraps)
        pkt.dateline = true;
    return d;
}

std::unique_ptr<RoutingAlgorithm>
makeRouting(const std::string &name, const Topology &topo)
{
    if (topo.isTorus()) {
        // Dimension-order with dateline classes is the one supported
        // torus scheme; the mesh algorithms assume edge-bounded DOR
        // legs (CR additionally assumes checkerboard half-routers).
        if (name == "xy" || name == "dor")
            return std::make_unique<TorusRouting>(topo, true);
        if (name == "yx")
            return std::make_unique<TorusRouting>(topo, false);
        tenoc_fatal("routing algorithm '", name, "' is mesh-only; a "
                    "torus topology supports 'xy' or 'yx' (dateline "
                    "dimension-order)");
    }
    if (name == "xy" || name == "dor")
        return std::make_unique<DorRouting>(topo, true);
    if (name == "yx")
        return std::make_unique<DorRouting>(topo, false);
    if (name == "cr" || name == "checkerboard")
        return std::make_unique<CheckerboardRouting>(topo);
    if (name == "o1turn")
        return std::make_unique<O1TurnRouting>(topo);
    if (name == "romm")
        return std::make_unique<RommRouting>(topo);
    if (name == "valiant")
        return std::make_unique<ValiantRouting>(topo);
    tenoc_fatal("unknown routing algorithm '", name, "'");
}

} // namespace tenoc
