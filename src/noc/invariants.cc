/**
 * @file
 * InvariantChecker implementation.
 */

#include "noc/invariants.hh"

#include <cstdlib>

#include "common/log.hh"
#include "noc/network_interface.hh"
#include "noc/router.hh"

namespace tenoc
{

namespace
{

using detail::formatMessage;

void
addViolation(std::vector<Violation> &out, Violation::Kind kind,
             std::string message)
{
    if (out.size() < InvariantChecker::maxViolations)
        out.push_back({kind, std::move(message)});
}

} // namespace

const char *
violationKindName(Violation::Kind kind)
{
    switch (kind) {
      case Violation::Kind::CREDIT_CONSERVATION:
        return "credit_conservation";
      case Violation::Kind::FLIT_CONSERVATION:
        return "flit_conservation";
      case Violation::Kind::PACKET_CONSERVATION:
        return "packet_conservation";
      case Violation::Kind::VC_STATE:
        return "vc_state";
      case Violation::Kind::VC_OWNERSHIP:
        return "vc_ownership";
      case Violation::Kind::OCCUPANCY:
        return "occupancy";
      case Violation::Kind::CONNECTIVITY:
        return "connectivity";
      case Violation::Kind::ACTIVITY:
        return "activity";
    }
    return "unknown";
}

bool
validateForcedByEnv()
{
    const char *env = std::getenv("TENOC_VALIDATE");
    return env && *env && std::string(env) != "0";
}

void
InvariantChecker::addRouter(const Router *router)
{
    routers_.push_back(router);
}

void
InvariantChecker::addNi(const NetworkInterface *ni)
{
    nis_.push_back(ni);
}

void
InvariantChecker::addLink(const Router *up, unsigned out_dir,
                          const Channel<Flit> *flit_chan,
                          const Channel<Credit> *credit_chan,
                          const Router *down, unsigned down_in)
{
    links_.push_back({up, out_dir, flit_chan, credit_chan, down, down_in});
}

void
InvariantChecker::setCounters(const std::uint64_t *inflight,
                              const std::uint64_t *flits_in,
                              const std::uint64_t *flits_out)
{
    inflight_ = inflight;
    flits_in_ = flits_in;
    flits_out_ = flits_out;
}

void
InvariantChecker::setActivity(const ActiveSet *router_set,
                              const ActiveSet *ni_set)
{
    router_set_ = router_set;
    ni_set_ = ni_set;
}

void
InvariantChecker::checkRouter(const Router &r,
                              std::vector<Violation> &out) const
{
    const unsigned vcs = r.numVcs();
    const unsigned inputs = r.numInputs();
    const unsigned outputs = r.numOutputs();

    for (unsigned in = 0; in < inputs; ++in) {
        for (unsigned vc = 0; vc < vcs; ++vc) {
            const auto occ = r.vcOccupancy(in, vc);
            if (occ > vc_depth_) {
                addViolation(out, Violation::Kind::OCCUPANCY,
                             formatMessage(
                                 "router ", r.id(), " input ", in, " vc ",
                                 vc, ": occupancy ", occ,
                                 " exceeds vcDepth ", vc_depth_));
            }
            const VcState state = r.vcState(in, vc);
            const Flit *front = r.vcFront(in, vc);
            switch (state) {
              case VcState::IDLE:
                // Between cycles an idle VC may already buffer the
                // next packet, but its front must then be a head flit
                // (routeCompute consumes exactly one worm at a time).
                if (front && !front->head) {
                    addViolation(out, Violation::Kind::VC_STATE,
                                 formatMessage(
                                     "router ", r.id(), " input ", in,
                                     " vc ", vc,
                                     ": IDLE with non-head flit at front"
                                     " (pkt ", front->pkt->id, " seq ",
                                     front->seq, ")"));
                }
                break;
              case VcState::ROUTING:
                addViolation(out, Violation::Kind::VC_STATE,
                             formatMessage(
                                 "router ", r.id(), " input ", in, " vc ",
                                 vc, ": ROUTING state is unreachable in"
                                 " the single-phase RC implementation"));
                break;
              case VcState::VC_ALLOC: {
                const unsigned out_port = r.vcOutPort(in, vc);
                if (!front) {
                    addViolation(out, Violation::Kind::VC_STATE,
                                 formatMessage(
                                     "router ", r.id(), " input ", in,
                                     " vc ", vc,
                                     ": VC_ALLOC with empty buffer"));
                } else if (!front->head) {
                    addViolation(out, Violation::Kind::VC_STATE,
                                 formatMessage(
                                     "router ", r.id(), " input ", in,
                                     " vc ", vc,
                                     ": VC_ALLOC with non-head front"
                                     " (pkt ", front->pkt->id, " seq ",
                                     front->seq, ")"));
                }
                if (out_port >= outputs) {
                    addViolation(out, Violation::Kind::CONNECTIVITY,
                                 formatMessage(
                                     "router ", r.id(), " input ", in,
                                     " vc ", vc, ": out port ", out_port,
                                     " out of range (", outputs, ")"));
                } else if (!r.connectivityAllows(in, out_port)) {
                    addViolation(out, Violation::Kind::CONNECTIVITY,
                                 formatMessage(
                                     "router ", r.id(), " input ", in,
                                     " vc ", vc, ": turn to output ",
                                     out_port,
                                     " violates the connectivity mask"));
                }
                break;
              }
              case VcState::ACTIVE: {
                const unsigned out_port = r.vcOutPort(in, vc);
                const unsigned out_vc = r.vcOutVc(in, vc);
                if (out_port >= outputs || out_vc >= vcs) {
                    addViolation(out, Violation::Kind::CONNECTIVITY,
                                 formatMessage(
                                     "router ", r.id(), " input ", in,
                                     " vc ", vc, ": ACTIVE targets (",
                                     out_port, ", ", out_vc,
                                     ") out of range"));
                    break;
                }
                if (!r.connectivityAllows(in, out_port)) {
                    addViolation(out, Violation::Kind::CONNECTIVITY,
                                 formatMessage(
                                     "router ", r.id(), " input ", in,
                                     " vc ", vc, ": ACTIVE turn to"
                                     " output ", out_port,
                                     " violates the connectivity mask"));
                }
                if (!r.outputVcOwned(out_port, out_vc) ||
                    r.outputVcOwnerIn(out_port, out_vc) != in ||
                    r.outputVcOwnerVc(out_port, out_vc) != vc) {
                    addViolation(out, Violation::Kind::VC_OWNERSHIP,
                                 formatMessage(
                                     "router ", r.id(), " input ", in,
                                     " vc ", vc,
                                     ": ACTIVE but output VC (",
                                     out_port, ", ", out_vc,
                                     ") is not owned by it"));
                }
                if (front && front->head && front->seq != 0) {
                    addViolation(out, Violation::Kind::VC_STATE,
                                 formatMessage(
                                     "router ", r.id(), " input ", in,
                                     " vc ", vc,
                                     ": malformed head flit (pkt ",
                                     front->pkt->id, " seq ",
                                     front->seq, ")"));
                }
                break;
              }
            }
        }
    }

    for (unsigned o = 0; o < outputs; ++o) {
        const bool directional = o < NUM_DIRS;
        for (unsigned vc = 0; vc < vcs; ++vc) {
            const unsigned credits = r.outputCredits(o, vc);
            const unsigned bound =
                directional && r.outputConnected(o) ? vc_depth_ : 0;
            if (credits > bound) {
                addViolation(out, Violation::Kind::CREDIT_CONSERVATION,
                             formatMessage(
                                 "router ", r.id(), " output ", o, " vc ",
                                 vc, ": ", credits,
                                 " credits exceed bound ", bound));
            }
            if (!r.outputVcOwned(o, vc))
                continue;
            const unsigned in = r.outputVcOwnerIn(o, vc);
            const unsigned in_vc = r.outputVcOwnerVc(o, vc);
            if (in >= r.numInputs() || in_vc >= vcs) {
                addViolation(out, Violation::Kind::VC_OWNERSHIP,
                             formatMessage(
                                 "router ", r.id(), " output VC (", o,
                                 ", ", vc, "): owner (", in, ", ", in_vc,
                                 ") out of range"));
                continue;
            }
            if (r.vcState(in, in_vc) != VcState::ACTIVE ||
                r.vcOutPort(in, in_vc) != o ||
                r.vcOutVc(in, in_vc) != vc) {
                addViolation(out, Violation::Kind::VC_OWNERSHIP,
                             formatMessage(
                                 "router ", r.id(), " output VC (", o,
                                 ", ", vc, "): recorded owner input (",
                                 in, ", ", in_vc,
                                 ") does not hold it"));
            }
        }
    }
}

void
InvariantChecker::checkLink(const LinkRecord &link,
                            std::vector<Violation> &out) const
{
    const unsigned vcs = link.up->numVcs();
    for (unsigned vc = 0; vc < vcs; ++vc) {
        const unsigned up_credits = link.up->outputCredits(link.outDir, vc);
        std::size_t flits_in_flight = 0;
        link.flitChan->forEachInFlight([&](const Flit &f) {
            if (f.vc == vc)
                ++flits_in_flight;
        });
        std::size_t credits_in_flight = 0;
        link.creditChan->forEachInFlight([&](const Credit &c) {
            if (c.vc == vc)
                ++credits_in_flight;
        });
        const std::size_t down_occ =
            link.down->vcOccupancy(link.downIn, vc);
        const std::size_t total = up_credits + flits_in_flight +
                                  credits_in_flight + down_occ;
        if (total != vc_depth_) {
            addViolation(out, Violation::Kind::CREDIT_CONSERVATION,
                         formatMessage(
                             "link ", link.up->id(), "->",
                             link.down->id(), " dir ", link.outDir,
                             " vc ", vc, ": credits=", up_credits,
                             " + flitsInFlight=", flits_in_flight,
                             " + creditsInFlight=", credits_in_flight,
                             " + downstreamOcc=", down_occ, " = ", total,
                             ", expected vcDepth=", vc_depth_));
        }
    }
}

void
InvariantChecker::checkNis(std::vector<Violation> &out) const
{
    for (const NetworkInterface *ni : nis_) {
        const NiAuditInfo info = ni->audit();
        if (info.pendingInject != info.queuedPackets + info.activeSlots) {
            addViolation(out, Violation::Kind::PACKET_CONSERVATION,
                         formatMessage(
                             "NI ", ni->node(), ": pendingInject=",
                             info.pendingInject, " but queues hold ",
                             info.queuedPackets, " + ", info.activeSlots,
                             " active"));
        }
        if (info.ejOccupancyCounter != info.ejFlits) {
            addViolation(out, Violation::Kind::OCCUPANCY,
                         formatMessage(
                             "NI ", ni->node(), ": ejection counter ",
                             info.ejOccupancyCounter, " != buffered ",
                             info.ejFlits));
        }
        if (info.maxEjPortOccupancy > info.ejCapacity) {
            addViolation(out, Violation::Kind::OCCUPANCY,
                         formatMessage(
                             "NI ", ni->node(), ": ejection port holds ",
                             info.maxEjPortOccupancy, " flits, capacity ",
                             info.ejCapacity));
        }
    }
}

void
InvariantChecker::checkConservation(std::vector<Violation> &out) const
{
    if (!flits_in_ || !flits_out_ || !inflight_)
        return;

    std::uint64_t buffered = 0;
    std::uint64_t buffered_tails = 0;
    for (const Router *r : routers_) {
        buffered += r->bufferedFlits();
        r->forEachBufferedFlit([&](unsigned, unsigned, const Flit &f) {
            if (f.tail)
                ++buffered_tails;
        });
    }
    std::uint64_t chan_flits = 0;
    std::uint64_t chan_tails = 0;
    for (const LinkRecord &link : links_) {
        link.flitChan->forEachInFlight([&](const Flit &f) {
            ++chan_flits;
            if (f.tail)
                ++chan_tails;
        });
    }
    std::uint64_t ej_flits = 0;
    std::uint64_t ej_tails = 0;
    std::uint64_t ni_pending = 0;
    for (const NetworkInterface *ni : nis_) {
        const NiAuditInfo info = ni->audit();
        ej_flits += info.ejFlits;
        ej_tails += info.ejTails;
        ni_pending += info.queuedPackets + info.activeSlots;
    }

    const std::uint64_t in_network = buffered + chan_flits + ej_flits;
    if (*flits_in_ - *flits_out_ != in_network) {
        addViolation(out, Violation::Kind::FLIT_CONSERVATION,
                     formatMessage(
                         "flits injected ", *flits_in_, " - drained ",
                         *flits_out_, " = ", *flits_in_ - *flits_out_,
                         " but the network holds ", in_network,
                         " (routers=", buffered, " channels=", chan_flits,
                         " ejection=", ej_flits, ")"));
    }

    const std::uint64_t held =
        ni_pending + buffered_tails + chan_tails + ej_tails;
    if (*inflight_ != held) {
        addViolation(out, Violation::Kind::PACKET_CONSERVATION,
                     formatMessage(
                         "in-flight counter ", *inflight_,
                         " != held packets ", held, " (NI pending=",
                         ni_pending, " tails: routers=", buffered_tails,
                         " channels=", chan_tails, " ejection=", ej_tails,
                         ")"));
    }
}

void
InvariantChecker::checkActivity(Cycle now,
                                std::vector<Violation> &out) const
{
    if (router_set_) {
        for (std::size_t n = 0; n < routers_.size(); ++n) {
            // couldWork() is mode-appropriate: under arrival-scheduled
            // channels it reports buffered flits or matured pending
            // bits (a sleeping router with only future in-flight
            // arrivals is legitimately retired — the wheel wakes it),
            // under wake-on-send it scans every attached channel.  The
            // deep matured-arrival scan backstops the wheel itself: a
            // lost entry leaves a matured flit with no pending bit,
            // which this check still flags.
            if ((routers_[n]->couldWork() ||
                 routers_[n]->hasMaturedArrival(now)) &&
                !router_set_->test(static_cast<unsigned>(n))) {
                addViolation(out, Violation::Kind::ACTIVITY,
                             formatMessage(
                                 "router ", routers_[n]->id(),
                                 " could work but is retired from the"
                                 " active set (idle-skip would strand"
                                 " its traffic)"));
            }
        }
    }
    if (ni_set_) {
        for (std::size_t n = 0; n < nis_.size(); ++n) {
            if (!nis_[n]->idle() &&
                !ni_set_->test(static_cast<unsigned>(n))) {
                addViolation(out, Violation::Kind::ACTIVITY,
                             formatMessage(
                                 "NI ", nis_[n]->node(),
                                 " holds work but is retired from the"
                                 " active set"));
            }
        }
    }
}

std::vector<Violation>
InvariantChecker::audit(Cycle now) const
{
    std::vector<Violation> out;
    for (const Router *r : routers_)
        checkRouter(*r, out);
    for (const LinkRecord &link : links_)
        checkLink(link, out);
    checkNis(out);
    checkConservation(out);
    checkActivity(now, out);
    return out;
}

void
InvariantChecker::check(Cycle now) const
{
    const auto violations = audit(now);
    if (violations.empty())
        return;
    std::string msg = formatMessage("invariant check failed at cycle ",
                                    now, " (", violations.size(),
                                    " violation(s)):");
    for (const Violation &v : violations) {
        msg += formatMessage("\n  [", violationKindName(v.kind), "] ",
                             v.message);
    }
    tenoc_panic(msg);
}

Cycle
InvariantChecker::oldestCreated() const
{
    Cycle oldest = INVALID_CYCLE;
    auto track = [&oldest](Cycle created) {
        if (created != INVALID_CYCLE &&
            (oldest == INVALID_CYCLE || created < oldest)) {
            oldest = created;
        }
    };
    for (const NetworkInterface *ni : nis_)
        track(ni->audit().oldestCreated);
    for (const Router *r : routers_) {
        r->forEachBufferedFlit([&](unsigned, unsigned, const Flit &f) {
            track(f.pkt->createdCycle);
        });
    }
    for (const LinkRecord &link : links_) {
        link.flitChan->forEachInFlight(
            [&](const Flit &f) { track(f.pkt->createdCycle); });
    }
    return oldest;
}

} // namespace tenoc
