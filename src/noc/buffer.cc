/**
 * @file
 * InputPort implementation.
 */

#include "noc/buffer.hh"

#include "common/snapshot.hh"

namespace tenoc
{

InputPort::InputPort(unsigned vcs, unsigned depth)
    : depth_(depth), vcs_(vcs)
{
    tenoc_assert(vcs >= 1 && depth >= 1, "bad input port geometry");
}

void
InputPort::push(Flit &&flit, Cycle now)
{
    auto &entry = vcs_.at(flit.vc);
    tenoc_assert(entry.fifo.size() < depth_,
                 "VC buffer overflow (credit protocol violated), vc=",
                 flit.vc);
    flit.enqueueCycle = now;
    entry.fifo.push_back(std::move(flit));
    ++total_;
}

unsigned
InputPort::freeSlots(unsigned vc) const
{
    return depth_ - static_cast<unsigned>(vcs_[vc].fifo.size());
}

const Flit &
InputPort::front(unsigned vc) const
{
    tenoc_assert(!vcs_[vc].fifo.empty(), "front() on empty VC");
    return vcs_[vc].fifo.front();
}

Flit
InputPort::pop(unsigned vc)
{
    tenoc_assert(!vcs_[vc].fifo.empty(), "pop() on empty VC");
    Flit f = std::move(vcs_[vc].fifo.front());
    vcs_[vc].fifo.pop_front();
    --total_;
    return f;
}

void
InputPort::save(SnapshotWriter &w) const
{
    w.tag("INPT");
    w.u64(vcs_.size());
    for (const VcEntry &entry : vcs_) {
        w.u8(static_cast<std::uint8_t>(entry.state));
        w.u32(entry.outPort);
        w.u32(entry.outVc);
        w.u64(entry.fifo.size());
        for (const Flit &flit : entry.fifo)
            saveFlit(w, flit);
    }
}

void
InputPort::restore(SnapshotReader &r)
{
    r.tag("INPT");
    const std::uint64_t vcs = r.u64();
    tenoc_assert(vcs == vcs_.size(), "input-port VC count mismatch");
    total_ = 0;
    for (VcEntry &entry : vcs_) {
        entry.state = static_cast<VcState>(r.u8());
        entry.outPort = r.u32();
        entry.outVc = r.u32();
        entry.fifo.clear();
        const std::uint64_t flits = r.u64();
        tenoc_assert(flits <= depth_, "restored VC overflows buffer");
        for (std::uint64_t i = 0; i < flits; ++i)
            entry.fifo.push_back(loadFlit(r));
        total_ += flits;
    }
}

} // namespace tenoc
