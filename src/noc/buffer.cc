/**
 * @file
 * InputPort implementation.
 */

#include "noc/buffer.hh"

namespace tenoc
{

InputPort::InputPort(unsigned vcs, unsigned depth)
    : depth_(depth), vcs_(vcs)
{
    tenoc_assert(vcs >= 1 && depth >= 1, "bad input port geometry");
}

void
InputPort::push(Flit &&flit, Cycle now)
{
    auto &entry = vcs_.at(flit.vc);
    tenoc_assert(entry.fifo.size() < depth_,
                 "VC buffer overflow (credit protocol violated), vc=",
                 flit.vc);
    flit.enqueueCycle = now;
    entry.fifo.push_back(std::move(flit));
    ++total_;
}

unsigned
InputPort::freeSlots(unsigned vc) const
{
    return depth_ - static_cast<unsigned>(vcs_[vc].fifo.size());
}

const Flit &
InputPort::front(unsigned vc) const
{
    tenoc_assert(!vcs_[vc].fifo.empty(), "front() on empty VC");
    return vcs_[vc].fifo.front();
}

Flit
InputPort::pop(unsigned vc)
{
    tenoc_assert(!vcs_[vc].fifo.empty(), "pop() on empty VC");
    Flit f = std::move(vcs_[vc].fifo.front());
    vcs_[vc].fifo.pop_front();
    --total_;
    return f;
}

} // namespace tenoc
