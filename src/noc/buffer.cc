/**
 * @file
 * InputPort implementation.
 */

#include "noc/buffer.hh"

#include "common/snapshot.hh"

namespace tenoc
{

InputPort::InputPort(unsigned vcs, unsigned depth)
    : owned_(std::make_unique<VcSlabs>()), slab_(owned_.get()),
      base_(0), nvcs_(vcs), depth_(depth)
{
    tenoc_assert(vcs >= 1 && depth >= 1, "bad input port geometry");
    owned_->configure(vcs, 0, depth);
}

InputPort::InputPort(VcSlabs &slab, std::size_t base, unsigned vcs,
                     unsigned depth)
    : slab_(&slab), base_(base), nvcs_(vcs), depth_(depth)
{
    tenoc_assert(vcs >= 1 && depth >= 1, "bad input port geometry");
    tenoc_assert(slab.depth() == depth &&
                     base + vcs <= slab.numInputVcs(),
                 "input port view exceeds slab");
}

void
InputPort::push(Flit &&flit, Cycle now)
{
    tenoc_assert(flit.vc < nvcs_, "push to out-of-range VC ", flit.vc);
    tenoc_assert(slab_->ringCount[base_ + flit.vc] < depth_,
                 "VC buffer overflow (credit protocol violated), vc=",
                 flit.vc);
    flit.enqueueCycle = now;
    const unsigned vc = flit.vc;
#if defined(__GNUC__) || defined(__clang__)
    // An arriving head flit will be dereferenced by route computation
    // later this cycle; its Packet lives at an arbitrary heap address,
    // so start pulling the line in now (no architectural effect).
    if (flit.head)
        __builtin_prefetch(flit.pkt.get(), 0, 2);
#endif
    slab_->pushFlit(base_ + vc, std::move(flit));
    ++total_;
}

Flit
InputPort::pop(unsigned vc)
{
    tenoc_assert(slab_->ringCount[base_ + vc] != 0,
                 "pop() on empty VC");
    --total_;
    return slab_->popFlit(base_ + vc);
}

void
InputPort::save(SnapshotWriter &w) const
{
    w.tag("INPT");
    w.u64(nvcs_);
    for (unsigned vc = 0; vc < nvcs_; ++vc) {
        const std::size_t idx = base_ + vc;
        w.u8(static_cast<std::uint8_t>(slab_->inState[idx]));
        w.u32(slab_->inOutPort[idx]);
        w.u32(slab_->inOutVc[idx]);
        w.u64(slab_->ringCount[idx]);
        slab_->forEachRingFlit(idx,
                               [&](const Flit &flit) { saveFlit(w, flit); });
    }
}

void
InputPort::restore(SnapshotReader &r)
{
    r.tag("INPT");
    const std::uint64_t vcs = r.u64();
    tenoc_assert(vcs == nvcs_, "input-port VC count mismatch");
    total_ = 0;
    for (unsigned vc = 0; vc < nvcs_; ++vc) {
        const std::size_t idx = base_ + vc;
        slab_->inState[idx] = static_cast<VcState>(r.u8());
        slab_->inOutPort[idx] = r.u32();
        slab_->inOutVc[idx] = r.u32();
        slab_->ringHead[idx] = 0;
        slab_->ringCount[idx] = 0;
        const std::uint64_t flits = r.u64();
        tenoc_assert(flits <= depth_, "restored VC overflows buffer");
        for (std::uint64_t i = 0; i < flits; ++i)
            slab_->pushFlit(idx, loadFlit(r));
        total_ += flits;
    }
}

} // namespace tenoc
