/**
 * @file
 * Open-loop traffic endpoint implementations.
 */

#include "noc/traffic.hh"

#include "common/log.hh"

namespace tenoc
{

DestinationChooser::DestinationChooser(std::vector<NodeId> mcs,
                                       double hotspot_fraction)
    : mcs_(std::move(mcs)), hotspot_fraction_(hotspot_fraction)
{
    tenoc_assert(!mcs_.empty(), "no MC nodes to address");
    tenoc_assert(hotspot_fraction_ >= 0.0 && hotspot_fraction_ < 1.0,
                 "bad hotspot fraction");
}

NodeId
DestinationChooser::pick(Rng &rng, NodeId exclude) const
{
    tenoc_assert(mcs_.size() > 1 || mcs_[0] != exclude,
                 "destination exclusion leaves no candidates");
    NodeId d;
    do {
        d = pick(rng);
    } while (d == exclude);
    return d;
}

NodeId
DestinationChooser::pick(Rng &rng) const
{
    if (hotspot_fraction_ > 0.0 && rng.nextBool(hotspot_fraction_))
        return mcs_[0];
    if (hotspot_fraction_ > 0.0 && mcs_.size() > 1) {
        // Remaining traffic spreads over the other MCs.
        return mcs_[1 + rng.nextRange(mcs_.size() - 1)];
    }
    return mcs_[rng.nextRange(mcs_.size())];
}

OpenLoopSource::OpenLoopSource(NodeId node, double rate,
                               unsigned request_flits,
                               const DestinationChooser &dests,
                               Network &net, Rng &rng)
    : node_(node), rate_(rate), request_flits_(request_flits),
      dests_(dests), net_(net), rng_(rng)
{
    tenoc_assert(rate_ >= 0.0 && rate_ <= 1.0,
                 "per-node packet rate must be in [0,1]");
}

void
OpenLoopSource::cycle(Cycle now, bool measuring)
{
    if (rng_.nextBool(rate_)) {
        auto pkt = makePacket();
        pkt->src = node_;
        pkt->dst = dests_.pick(rng_);
        pkt->op = MemOp::READ_REQUEST;
        pkt->protoClass = 0;
        pkt->sizeFlits = request_flits_;
        pkt->sizeBytes = request_flits_ * net_.flitBytes();
        pkt->tag = measuring ? 1 : 0;
        pkt->createdCycle = now; // include source queueing in latency
        ++generated_;
        queue_.push_back(std::move(pkt));
    }
    while (!queue_.empty() && net_.canInject(node_, 0)) {
        net_.inject(std::move(queue_.front()), now);
        queue_.pop_front();
    }
}

McEchoSink::McEchoSink(NodeId node, unsigned reply_flits, Network &net,
                       Accumulator &req_latency,
                       OpenLoopMeasure *measure)
    : node_(node), reply_flits_(reply_flits), net_(net),
      req_latency_(req_latency), measure_(measure)
{}

bool
McEchoSink::tryReserve(const Packet &pkt)
{
    (void)pkt;
    return true; // open-loop MCs have infinite service capacity
}

void
McEchoSink::deliver(PacketPtr pkt, Cycle now)
{
    if (pkt->tag & 1) {
        req_latency_.sample(static_cast<double>(now - pkt->createdCycle));
        if (measure_) {
            measure_->taggedFlitsDelivered += pkt->sizeFlits;
            ++measure_->taggedPacketsDelivered;
        }
    }
    auto reply = makePacket();
    reply->src = node_;
    reply->dst = pkt->src;
    reply->op = MemOp::READ_REPLY;
    reply->protoClass = 1;
    reply->sizeFlits = reply_flits_;
    reply->sizeBytes = reply_flits_ * net_.flitBytes();
    reply->tag = pkt->tag;
    reply->createdCycle = now; // include MC-side queueing in latency
    replies_.push_back(std::move(reply));
}

void
McEchoSink::cycle(Cycle now)
{
    while (!replies_.empty() && net_.canInject(node_, 1)) {
        net_.inject(std::move(replies_.front()), now);
        replies_.pop_front();
    }
}

CollectiveSource::CollectiveSource(NodeId node, double rate,
                                   unsigned flits,
                                   std::vector<NodeId> dsts,
                                   Network &net, Rng &rng)
    : node_(node), rate_(rate), flits_(flits), dsts_(std::move(dsts)),
      net_(net), rng_(rng)
{
    tenoc_assert(rate_ >= 0.0 && rate_ <= 1.0,
                 "collective rate must be in [0,1]");
    tenoc_assert(!dsts_.empty(), "collective needs >= 1 destination");
    for (NodeId d : dsts_) {
        tenoc_assert(d != node_,
                     "collective membership must exclude the root");
    }
}

void
CollectiveSource::cycle(Cycle now, bool measuring)
{
    if (rng_.nextBool(rate_))
        queue_.push_back({now, measuring});
    while (!queue_.empty()) {
        Packet proto;
        proto.src = node_;
        proto.op = MemOp::READ_REQUEST;
        proto.protoClass = 0;
        proto.sizeFlits = flits_;
        proto.sizeBytes = flits_ * net_.flitBytes();
        proto.tag = queue_.front().measuring ? 1 : 0;
        // Stamped at draw time: completion latency includes the time a
        // collective waited for an atomic injection window.
        proto.createdCycle = queue_.front().created;
        proto.collectiveId = collectiveIdFor(node_, next_seq_);
        if (!net_.injectMulticast(dsts_, proto, now))
            break; // all-or-nothing: retry the same collective later
        ++next_seq_;
        ++issued_;
        queue_.pop_front();
    }
}

CollectiveEchoSink::CollectiveEchoSink(NodeId node, unsigned reply_flits,
                                       Network &net)
    : node_(node), reply_flits_(reply_flits), net_(net)
{}

bool
CollectiveEchoSink::tryReserve(const Packet &pkt)
{
    (void)pkt;
    return true;
}

void
CollectiveEchoSink::deliver(PacketPtr pkt, Cycle now)
{
    (void)now;
    tenoc_assert(pkt->collectiveId != 0,
                 "collective echo sink received non-collective packet ",
                 pkt->id);
    auto c = makePacket();
    c->src = node_;
    c->dst = pkt->src;
    c->op = MemOp::READ_REPLY;
    c->protoClass = 1;
    c->sizeFlits = reply_flits_;
    c->sizeBytes = reply_flits_ * net_.flitBytes();
    c->tag = pkt->tag;
    c->collectiveId = pkt->collectiveId;
    // Carry the collective's original creation cycle so the merge
    // sink's sample spans the whole broadcast -> reduce round.
    c->createdCycle = pkt->createdCycle;
    contributions_.push_back(std::move(c));
}

void
CollectiveEchoSink::cycle(Cycle now)
{
    while (!contributions_.empty() && net_.canInject(node_, 1)) {
        net_.inject(std::move(contributions_.front()), now);
        contributions_.pop_front();
    }
}

ReductionSink::ReductionSink(unsigned fanout, Accumulator &latency,
                             OpenLoopMeasure *measure)
    : fanout_(fanout), latency_(latency), measure_(measure)
{
    tenoc_assert(fanout_ >= 1, "reduction fanout must be >= 1");
}

bool
ReductionSink::tryReserve(const Packet &pkt)
{
    (void)pkt;
    return true;
}

void
ReductionSink::deliver(PacketPtr pkt, Cycle now)
{
    tenoc_assert(pkt->collectiveId != 0,
                 "reduction sink received non-collective packet ",
                 pkt->id);
    if (measure_ && (pkt->tag & 1)) {
        measure_->taggedFlitsDelivered += pkt->sizeFlits;
        ++measure_->taggedPacketsDelivered;
    }
    unsigned &count = partial_[pkt->collectiveId];
    tenoc_assert(count < fanout_, "collective ", pkt->collectiveId,
                 " received more than ", fanout_, " contributions");
    if (++count < fanout_)
        return;
    partial_.erase(pkt->collectiveId);
    ++merged_;
    if (pkt->tag & 1) {
        latency_.sample(static_cast<double>(now - pkt->createdCycle));
    }
}

} // namespace tenoc
