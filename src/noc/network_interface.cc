/**
 * @file
 * NetworkInterface implementation.
 */

#include "noc/network_interface.hh"

#include <algorithm>

#include "common/snapshot.hh"
#include "telemetry/trace_sink.hh"

namespace tenoc
{

NetworkInterface::NetworkInterface(NodeId node, Router &router,
                                   const VcMap &vc_map,
                                   const NiParams &params,
                                   NetStats &stats)
    : node_(node), router_(router), vc_map_(vc_map), params_(params),
      stats_(stats)
{
    inj_queues_.resize(vc_map_.protoClasses);
    lane_rr_.assign(vc_map_.protoClasses, 0);
    active_.assign(router_.params().numInjPorts,
                   std::vector<ActivePacket>(vc_map_.numVcs()));
    vc_rr_.assign(router_.params().numInjPorts, 0);
    ej_bufs_.resize(router_.params().numEjPorts);
}

bool
NetworkInterface::canInject(int proto_class) const
{
    const auto cls =
        static_cast<unsigned>(proto_class) % vc_map_.protoClasses;
    return inj_queues_[cls].size() < params_.injQueueCap;
}

unsigned
NetworkInterface::injectSpace(int proto_class) const
{
    const auto cls =
        static_cast<unsigned>(proto_class) % vc_map_.protoClasses;
    const auto used = inj_queues_[cls].size();
    return used >= params_.injQueueCap
        ? 0 : static_cast<unsigned>(params_.injQueueCap - used);
}

void
NetworkInterface::enqueue(PacketPtr pkt, Cycle now)
{
    tenoc_assert(pkt->src == node_, "packet enqueued at wrong NI");
    tenoc_assert(pkt->dst != node_, "self-addressed packet");
    const auto cls =
        static_cast<unsigned>(pkt->protoClass) % vc_map_.protoClasses;
    tenoc_assert(inj_queues_[cls].size() < params_.injQueueCap,
                 "NI injection queue overflow at node ", node_);
    if (pkt->createdCycle == INVALID_CYCLE)
        pkt->createdCycle = now;
    inj_queues_[cls].push_back(std::move(pkt));
    ++pending_inject_;
    if (inflight_)
        ++*inflight_;
    if (active_set_)
        active_set_->mark(active_idx_);
}

bool
NetworkInterface::refillOne(Cycle now)
{
    (void)now;
    const unsigned classes = vc_map_.protoClasses;
    const unsigned ports = static_cast<unsigned>(active_.size());
    for (unsigned i = 0; i < classes; ++i) {
        const unsigned cls = (class_rr_ + i) % classes;
        if (inj_queues_[cls].empty())
            continue;
        const Packet &pkt = *inj_queues_[cls].front();
        const unsigned base = vc_map_.baseVc(pkt);
        // Find a free (port, lane) slot for this packet's VC class,
        // round-robin over ports (Sec. IV-D) and lanes.
        for (unsigned pi = 0; pi < ports; ++pi) {
            const unsigned p = (port_rr_ + pi) % ports;
            for (unsigned li = 0; li < vc_map_.vcsPerClass; ++li) {
                const unsigned lane =
                    (lane_rr_[cls] + li) % vc_map_.vcsPerClass;
                const unsigned vc = base + lane;
                auto &act = active_[p][vc];
                if (act.valid)
                    continue;
                act.pkt = std::move(inj_queues_[cls].front());
                inj_queues_[cls].pop_front();
                makeFlits(act.pkt, act.flits);
                act.next = 0;
                act.valid = true;
                for (auto &f : act.flits)
                    f.vc = vc;
                class_rr_ = (cls + 1) % classes;
                lane_rr_[cls] = (lane + 1) % vc_map_.vcsPerClass;
                port_rr_ = (p + 1) % ports;
                return true;
            }
        }
    }
    return false;
}

void
NetworkInterface::injectPhase(Cycle now)
{
    if (pending_inject_ == 0)
        return; // nothing queued and no packet mid-injection
    while (refillOne(now)) {
    }
    const unsigned ports = static_cast<unsigned>(active_.size());
    const unsigned vcs = vc_map_.numVcs();
    for (unsigned p = 0; p < ports; ++p) {
        // One flit per port per cycle (terminal bandwidth); pick the
        // next streamable VC round-robin.
        for (unsigned vi = 0; vi < vcs; ++vi) {
            const unsigned vc = (vc_rr_[p] + vi) % vcs;
            auto &act = active_[p][vc];
            if (!act.valid || router_.injFreeSlots(p, vc) == 0)
                continue;
            Flit flit = act.flits[act.next];
            if (flit.head && act.pkt->injectedCycle == INVALID_CYCLE) {
                act.pkt->injectedCycle = now;
                if (tracer_ && tracer_->wants(act.pkt->id)) {
                    tracer_->complete("inject_queue", node_,
                                      act.pkt->id,
                                      act.pkt->createdCycle, now);
                }
            }
            if (defer_) {
                delta_.dirty = true;
                ++delta_.flitsInjected;
                ++delta_.nodeInjFlits;
                ++delta_.netIn;
            } else {
                ++stats_.flitsInjected;
                stats_.nodeInjectedFlits[node_] += 1;
                if (net_flits_in_)
                    ++*net_flits_in_;
            }
            router_.injectFlit(p, std::move(flit), now);
            ++act.next;
            if (act.next == act.flits.size()) {
                if (defer_) {
                    ++delta_.packetsInjected;
                    delta_.nodeInjBytes += act.pkt->sizeBytes;
                } else {
                    ++stats_.packetsInjected;
                    stats_.nodeInjectedBytes[node_] += act.pkt->sizeBytes;
                }
                // Reset in place: keep the flit vector's capacity so
                // the next packet on this (port, VC) lane reuses it.
                act.pkt.reset();
                act.flits.clear();
                act.next = 0;
                act.valid = false;
                --pending_inject_;
            }
            vc_rr_[p] = (vc + 1) % vcs;
            break;
        }
    }
}

bool
NetworkInterface::ejectReady(unsigned ej_port) const
{
    return ej_bufs_[ej_port].size() < params_.ejBufferFlits;
}

void
NetworkInterface::ejectFlit(unsigned ej_port, Flit &&flit, Cycle now)
{
    (void)now;
    tenoc_assert(ej_bufs_[ej_port].size() < params_.ejBufferFlits,
                 "ejection buffer overflow at node ", node_);
    ej_bufs_[ej_port].push_back(std::move(flit));
    ++ej_occupancy_;
    if (active_set_)
        active_set_->mark(active_idx_);
}

void
NetworkInterface::drainPhase(Cycle now)
{
    if (ej_occupancy_ == 0)
        return;
    for (auto &buf : ej_bufs_) {
        if (buf.empty())
            continue;
        Flit &f = buf.front();
        if (f.head && sink_ && !sink_->tryReserve(*f.pkt))
            continue; // node backpressure (e.g. MC queue full)
        Flit flit = std::move(buf.front());
        buf.pop_front();
        --ej_occupancy_;
        if (defer_) {
            delta_.dirty = true;
            ++delta_.flitsEjected;
            ++delta_.nodeEjFlits;
            ++delta_.netOut;
        } else {
            ++stats_.flitsEjected;
            stats_.nodeEjectedFlits[node_] += 1;
            if (net_flits_out_)
                ++*net_flits_out_;
        }
        if (flit.head)
            flit.pkt->headEjectedCycle = now;
        if (flit.tail) {
            PacketPtr pkt = flit.pkt;
            pkt->ejectedCycle = now;
            // Record the same samples the live path takes, in the
            // same order; tags are replayed by applyDeferredStats.
            auto sample = [&](std::uint8_t tag, auto &live, double v) {
                if (defer_)
                    delta_.samples.emplace_back(tag, v);
                else
                    live.sample(v);
            };
            if (defer_) {
                ++delta_.inflightDec;
                ++delta_.packetsEjected;
                delta_.nodeEjBytes += pkt->sizeBytes;
            } else {
                if (inflight_)
                    --*inflight_;
                ++stats_.packetsEjected;
                stats_.nodeEjectedBytes[node_] += pkt->sizeBytes;
            }
            sample(0, stats_.totalLatency,
                   static_cast<double>(now - pkt->createdCycle));
            sample(1, stats_.totalLatencyHist,
                   static_cast<double>(now - pkt->createdCycle));
            if (pkt->injectedCycle != INVALID_CYCLE) {
                sample(2, stats_.netLatency,
                       static_cast<double>(now - pkt->injectedCycle));
                sample(3, stats_.queueLatencyHist,
                       static_cast<double>(pkt->injectedCycle -
                                           pkt->createdCycle));
                if (pkt->headEjectedCycle != INVALID_CYCLE) {
                    sample(4, stats_.traversalLatencyHist,
                           static_cast<double>(pkt->headEjectedCycle -
                                               pkt->injectedCycle));
                    sample(5, stats_.serializationLatencyHist,
                           static_cast<double>(now -
                                               pkt->headEjectedCycle));
                }
            }
            if (tracer_ && tracer_->wants(pkt->id)) {
                tracer_->complete(
                    "eject", node_, pkt->id,
                    pkt->headEjectedCycle != INVALID_CYCLE
                        ? pkt->headEjectedCycle : now,
                    now);
            }
            if (defer_) {
                // Deliveries (and the final PacketPtr release) replay
                // on the orchestrating thread, which owns the pool.
                delta_.deliveries.emplace_back(std::move(pkt), now);
            } else if (sink_) {
                sink_->deliver(std::move(pkt), now);
            }
        }
    }
}

bool
NetworkInterface::idle() const
{
    return pending_inject_ == 0 && ej_occupancy_ == 0;
}

void
NetworkInterface::applyDeferredStats()
{
    if (!delta_.dirty)
        return;
    stats_.flitsInjected += delta_.flitsInjected;
    stats_.flitsEjected += delta_.flitsEjected;
    stats_.packetsInjected += delta_.packetsInjected;
    stats_.packetsEjected += delta_.packetsEjected;
    stats_.nodeInjectedFlits[node_] += delta_.nodeInjFlits;
    stats_.nodeEjectedFlits[node_] += delta_.nodeEjFlits;
    stats_.nodeInjectedBytes[node_] += delta_.nodeInjBytes;
    stats_.nodeEjectedBytes[node_] += delta_.nodeEjBytes;
    if (net_flits_in_)
        *net_flits_in_ += delta_.netIn;
    if (net_flits_out_)
        *net_flits_out_ += delta_.netOut;
    if (inflight_)
        *inflight_ -= delta_.inflightDec;
    for (const auto &[tag, v] : delta_.samples) {
        switch (tag) {
          case 0: stats_.totalLatency.sample(v); break;
          case 1: stats_.totalLatencyHist.sample(v); break;
          case 2: stats_.netLatency.sample(v); break;
          case 3: stats_.queueLatencyHist.sample(v); break;
          case 4: stats_.traversalLatencyHist.sample(v); break;
          case 5: stats_.serializationLatencyHist.sample(v); break;
        }
    }
    // Reset scalars in place; the vectors keep their capacity.
    delta_.samples.clear();
    delta_.dirty = false;
    delta_.flitsInjected = delta_.flitsEjected = 0;
    delta_.packetsInjected = delta_.packetsEjected = 0;
    delta_.nodeInjFlits = delta_.nodeEjFlits = 0;
    delta_.nodeInjBytes = delta_.nodeEjBytes = 0;
    delta_.netIn = delta_.netOut = delta_.inflightDec = 0;
}

void
NetworkInterface::flushDeferredDeliveries()
{
    for (auto &[pkt, cyc] : delta_.deliveries) {
        if (sink_)
            sink_->deliver(std::move(pkt), cyc);
        else
            pkt.reset();
    }
    delta_.deliveries.clear();
}

NiAuditInfo
NetworkInterface::audit() const
{
    NiAuditInfo info;
    info.pendingInject = pending_inject_;
    info.ejOccupancyCounter = ej_occupancy_;
    info.ejCapacity = params_.ejBufferFlits;
    info.idle = idle();
    auto track = [&info](const Packet &pkt) {
        if (pkt.createdCycle != INVALID_CYCLE &&
            (info.oldestCreated == INVALID_CYCLE ||
             pkt.createdCycle < info.oldestCreated)) {
            info.oldestCreated = pkt.createdCycle;
        }
    };
    for (const auto &q : inj_queues_) {
        info.queuedPackets += static_cast<unsigned>(q.size());
        for (const auto &pkt : q)
            track(*pkt);
    }
    for (const auto &port : active_) {
        for (const auto &act : port) {
            if (!act.valid)
                continue;
            ++info.activeSlots;
            track(*act.pkt);
        }
    }
    for (const auto &buf : ej_bufs_) {
        info.ejFlits += static_cast<unsigned>(buf.size());
        info.maxEjPortOccupancy = std::max(
            info.maxEjPortOccupancy, static_cast<unsigned>(buf.size()));
        for (const auto &flit : buf) {
            if (flit.tail)
                ++info.ejTails;
            track(*flit.pkt);
        }
    }
    return info;
}

void
NetworkInterface::save(SnapshotWriter &w) const
{
    w.tag("NIFC");
    tenoc_assert(!delta_.dirty, "NI snapshot with pending deferred stats");
    w.u32(pending_inject_);
    w.u32(ej_occupancy_);
    w.u64(inj_queues_.size());
    for (const auto &q : inj_queues_) {
        w.u64(q.size());
        for (const PacketPtr &pkt : q)
            savePacket(w, pkt);
    }
    for (const auto &port : active_) {
        for (const ActivePacket &act : port) {
            w.boolean(act.valid);
            if (!act.valid)
                continue;
            savePacket(w, act.pkt);
            w.u64(act.flits.size());
            for (const Flit &flit : act.flits)
                saveFlit(w, flit);
            w.u32(act.next);
        }
    }
    for (const unsigned rr : lane_rr_)
        w.u32(rr);
    for (const unsigned rr : vc_rr_)
        w.u32(rr);
    w.u32(class_rr_);
    w.u32(port_rr_);
    for (const auto &buf : ej_bufs_) {
        w.u64(buf.size());
        for (const Flit &flit : buf)
            saveFlit(w, flit);
    }
}

void
NetworkInterface::restore(SnapshotReader &r)
{
    r.tag("NIFC");
    pending_inject_ = r.u32();
    ej_occupancy_ = r.u32();
    const std::uint64_t classes = r.u64();
    tenoc_assert(classes == inj_queues_.size(),
                 "NI class count mismatch");
    for (auto &q : inj_queues_) {
        q.clear();
        const std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i)
            q.push_back(loadPacket(r));
    }
    for (auto &port : active_) {
        for (ActivePacket &act : port) {
            act.valid = r.boolean();
            if (!act.valid) {
                act.pkt.reset();
                act.flits.clear();
                act.next = 0;
                continue;
            }
            act.pkt = loadPacket(r);
            act.flits.clear();
            const std::uint64_t n = r.u64();
            for (std::uint64_t i = 0; i < n; ++i)
                act.flits.push_back(loadFlit(r));
            act.next = r.u32();
        }
    }
    for (unsigned &rr : lane_rr_)
        rr = r.u32();
    for (unsigned &rr : vc_rr_)
        rr = r.u32();
    class_rr_ = r.u32();
    port_rr_ = r.u32();
    for (auto &buf : ej_bufs_) {
        buf.clear();
        const std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i)
            buf.push_back(loadFlit(r));
    }
}

} // namespace tenoc
