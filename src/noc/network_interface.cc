/**
 * @file
 * NetworkInterface implementation.
 *
 * All hot containers (class queues, active packet slots, ejection
 * buffers) live in a NiSlabs arena — see slab.hh — so the phase
 * methods stream flat arrays instead of chasing deque blocks.  The
 * serialization order of save()/restore() is unchanged from the
 * per-object layout, so the snapshot format is unaffected.
 */

#include "noc/network_interface.hh"

#include <algorithm>

#include "common/snapshot.hh"
#include "telemetry/trace_sink.hh"

namespace tenoc
{

NetworkInterface::NetworkInterface(NodeId node, Router &router,
                                   const VcMap &vc_map,
                                   const NiParams &params,
                                   NetStats &stats, NiSlabs *slab,
                                   unsigned slab_index)
    : node_(node), router_(router), vc_map_(vc_map), params_(params),
      stats_(stats)
{
    ports_ = router_.params().numInjPorts;
    ej_ports_ = router_.params().numEjPorts;
    vcs_ = vc_map_.numVcs();
    if (slab) {
        nslab_ = slab;
        ni_ = slab_index;
        tenoc_assert(nslab_->classes() == vc_map_.protoClasses &&
                         nslab_->injCap() == params_.injQueueCap &&
                         nslab_->ejCap() == params_.ejBufferFlits,
                     "NI slab layout mismatch at node ", node_);
    } else {
        owned_nslab_ = std::make_unique<NiSlabs>();
        owned_nslab_->configure(
            std::vector<unsigned>{ports_}, vcs_, vc_map_.protoClasses,
            params_.injQueueCap, std::vector<unsigned>{ej_ports_},
            params_.ejBufferFlits);
        nslab_ = owned_nslab_.get();
        ni_ = 0;
    }
    qbase_ = std::size_t{ni_} * vc_map_.protoClasses;
    sbase_ = nslab_->slotBase[ni_];
    ebase_ = nslab_->ejPortBase[ni_];
    lane_rr_.assign(vc_map_.protoClasses, 0);
    vc_rr_.assign(ports_, 0);
}

bool
NetworkInterface::canInject(int proto_class) const
{
    const auto cls =
        static_cast<unsigned>(proto_class) % vc_map_.protoClasses;
    return nslab_->qSize(qbase_ + cls) < params_.injQueueCap;
}

unsigned
NetworkInterface::injectSpace(int proto_class) const
{
    const auto cls =
        static_cast<unsigned>(proto_class) % vc_map_.protoClasses;
    const auto used = nslab_->qSize(qbase_ + cls);
    return used >= params_.injQueueCap
        ? 0 : static_cast<unsigned>(params_.injQueueCap - used);
}

void
NetworkInterface::enqueue(PacketPtr pkt, Cycle now)
{
    tenoc_assert(pkt->src == node_, "packet enqueued at wrong NI");
    tenoc_assert(pkt->dst != node_, "self-addressed packet");
    const auto cls =
        static_cast<unsigned>(pkt->protoClass) % vc_map_.protoClasses;
    tenoc_assert(nslab_->qSize(qbase_ + cls) < params_.injQueueCap,
                 "NI injection queue overflow at node ", node_);
    if (pkt->createdCycle == INVALID_CYCLE)
        pkt->createdCycle = now;
    nslab_->qPush(qbase_ + cls, std::move(pkt));
    ++nslab_->pendingInject[ni_];
    if (inflight_)
        ++*inflight_;
    if (active_set_)
        active_set_->mark(active_idx_);
}

bool
NetworkInterface::refillOne(Cycle now)
{
    (void)now;
    const unsigned classes = vc_map_.protoClasses;
    NiSlabs &s = *nslab_;
    for (unsigned i = 0; i < classes; ++i) {
        const unsigned cls = (class_rr_ + i) % classes;
        const std::size_t q = qbase_ + cls;
        if (s.qSize(q) == 0)
            continue;
        const Packet &pkt = *s.qFront(q);
        const unsigned base = vc_map_.baseVc(pkt);
        // Find a free (port, lane) slot for this packet's VC class,
        // round-robin over ports (Sec. IV-D) and lanes.
        for (unsigned pi = 0; pi < ports_; ++pi) {
            const unsigned p = (port_rr_ + pi) % ports_;
            for (unsigned li = 0; li < vc_map_.vcsPerClass; ++li) {
                const unsigned lane =
                    (lane_rr_[cls] + li) % vc_map_.vcsPerClass;
                const unsigned vc = base + lane;
                const std::size_t slot = sbase_ + p * vcs_ + vc;
                if (s.actValid[slot])
                    continue;
                s.actPkt[slot] = s.qPop(q);
                makeFlits(s.actPkt[slot], s.actFlits[slot]);
                s.actNext[slot] = 0;
                s.actValid[slot] = 1;
                for (auto &f : s.actFlits[slot])
                    f.vc = vc;
                class_rr_ = (cls + 1) % classes;
                lane_rr_[cls] = (lane + 1) % vc_map_.vcsPerClass;
                port_rr_ = (p + 1) % ports_;
                return true;
            }
        }
    }
    return false;
}

void
NetworkInterface::injectPhase(Cycle now)
{
    NiSlabs &s = *nslab_;
    if (s.pendingInject[ni_] == 0)
        return; // nothing queued and no packet mid-injection
    while (refillOne(now)) {
    }
    for (unsigned p = 0; p < ports_; ++p) {
        // One flit per port per cycle (terminal bandwidth); pick the
        // next streamable VC round-robin.
        for (unsigned vi = 0; vi < vcs_; ++vi) {
            const unsigned vc = (vc_rr_[p] + vi) % vcs_;
            const std::size_t slot = sbase_ + p * vcs_ + vc;
            if (!s.actValid[slot] || router_.injFreeSlots(p, vc) == 0)
                continue;
            Flit flit = s.actFlits[slot][s.actNext[slot]];
            PacketPtr &pkt = s.actPkt[slot];
            if (flit.head && pkt->injectedCycle == INVALID_CYCLE) {
                pkt->injectedCycle = now;
                if (tracer_ && tracer_->wants(pkt->id)) {
                    tracer_->complete("inject_queue", node_, pkt->id,
                                      pkt->createdCycle, now);
                }
            }
            if (defer_) {
                delta_.dirty = true;
                ++delta_.flitsInjected;
                ++delta_.nodeInjFlits;
                ++delta_.netIn;
            } else {
                ++stats_.flitsInjected;
                stats_.nodeInjectedFlits[node_] += 1;
                if (net_flits_in_)
                    ++*net_flits_in_;
            }
            router_.injectFlit(p, std::move(flit), now);
            ++s.actNext[slot];
            if (s.actNext[slot] == s.actFlits[slot].size()) {
                if (defer_) {
                    ++delta_.packetsInjected;
                    delta_.nodeInjBytes += pkt->sizeBytes;
                } else {
                    ++stats_.packetsInjected;
                    stats_.nodeInjectedBytes[node_] += pkt->sizeBytes;
                }
                // Reset in place: keep the flit vector's capacity so
                // the next packet on this (port, VC) lane reuses it.
                pkt.reset();
                s.actFlits[slot].clear();
                s.actNext[slot] = 0;
                s.actValid[slot] = 0;
                --s.pendingInject[ni_];
            }
            vc_rr_[p] = (vc + 1) % vcs_;
            break;
        }
    }
}

bool
NetworkInterface::ejectReady(unsigned ej_port) const
{
    return nslab_->ejSize(ebase_ + ej_port) < params_.ejBufferFlits;
}

void
NetworkInterface::ejectFlit(unsigned ej_port, Flit &&flit, Cycle now)
{
    (void)now;
    tenoc_assert(nslab_->ejSize(ebase_ + ej_port) < params_.ejBufferFlits,
                 "ejection buffer overflow at node ", node_);
    nslab_->ejPush(ebase_ + ej_port, std::move(flit));
    ++nslab_->ejOccupancy[ni_];
    if (active_set_)
        active_set_->mark(active_idx_);
}

void
NetworkInterface::drainPhase(Cycle now)
{
    NiSlabs &s = *nslab_;
    if (s.ejOccupancy[ni_] == 0)
        return;
    for (unsigned p = 0; p < ej_ports_; ++p) {
        const std::size_t ring = ebase_ + p;
        if (s.ejSize(ring) == 0)
            continue;
        const Flit &f = s.ejFront(ring);
        if (f.head && sink_ && !sink_->tryReserve(*f.pkt))
            continue; // node backpressure (e.g. MC queue full)
        Flit flit = s.ejPop(ring);
        --s.ejOccupancy[ni_];
        if (defer_) {
            delta_.dirty = true;
            ++delta_.flitsEjected;
            ++delta_.nodeEjFlits;
            ++delta_.netOut;
        } else {
            ++stats_.flitsEjected;
            stats_.nodeEjectedFlits[node_] += 1;
            if (net_flits_out_)
                ++*net_flits_out_;
        }
        if (flit.head)
            flit.pkt->headEjectedCycle = now;
        if (flit.tail) {
            PacketPtr pkt = flit.pkt;
            pkt->ejectedCycle = now;
            // Record the same samples the live path takes, in the
            // same order; tags are replayed by applyDeferredStats.
            auto sample = [&](std::uint8_t tag, auto &live, double v) {
                if (defer_)
                    delta_.samples.emplace_back(tag, v);
                else
                    live.sample(v);
            };
            if (defer_) {
                ++delta_.inflightDec;
                ++delta_.packetsEjected;
                delta_.nodeEjBytes += pkt->sizeBytes;
            } else {
                if (inflight_)
                    --*inflight_;
                ++stats_.packetsEjected;
                stats_.nodeEjectedBytes[node_] += pkt->sizeBytes;
            }
            sample(0, stats_.totalLatency,
                   static_cast<double>(now - pkt->createdCycle));
            sample(1, stats_.totalLatencyHist,
                   static_cast<double>(now - pkt->createdCycle));
            if (pkt->injectedCycle != INVALID_CYCLE) {
                sample(2, stats_.netLatency,
                       static_cast<double>(now - pkt->injectedCycle));
                sample(3, stats_.queueLatencyHist,
                       static_cast<double>(pkt->injectedCycle -
                                           pkt->createdCycle));
                if (pkt->headEjectedCycle != INVALID_CYCLE) {
                    sample(4, stats_.traversalLatencyHist,
                           static_cast<double>(pkt->headEjectedCycle -
                                               pkt->injectedCycle));
                    sample(5, stats_.serializationLatencyHist,
                           static_cast<double>(now -
                                               pkt->headEjectedCycle));
                }
            }
            if (tracer_ && tracer_->wants(pkt->id)) {
                tracer_->complete(
                    "eject", node_, pkt->id,
                    pkt->headEjectedCycle != INVALID_CYCLE
                        ? pkt->headEjectedCycle : now,
                    now);
            }
            if (defer_) {
                // Deliveries (and the final PacketPtr release) replay
                // on the orchestrating thread, which owns the pool.
                delta_.deliveries.emplace_back(std::move(pkt), now);
            } else if (sink_) {
                sink_->deliver(std::move(pkt), now);
            }
        }
    }
}

bool
NetworkInterface::idle() const
{
    return nslab_->pendingInject[ni_] == 0 &&
           nslab_->ejOccupancy[ni_] == 0;
}

void
NetworkInterface::applyDeferredStats()
{
    if (!delta_.dirty)
        return;
    stats_.flitsInjected += delta_.flitsInjected;
    stats_.flitsEjected += delta_.flitsEjected;
    stats_.packetsInjected += delta_.packetsInjected;
    stats_.packetsEjected += delta_.packetsEjected;
    stats_.nodeInjectedFlits[node_] += delta_.nodeInjFlits;
    stats_.nodeEjectedFlits[node_] += delta_.nodeEjFlits;
    stats_.nodeInjectedBytes[node_] += delta_.nodeInjBytes;
    stats_.nodeEjectedBytes[node_] += delta_.nodeEjBytes;
    if (net_flits_in_)
        *net_flits_in_ += delta_.netIn;
    if (net_flits_out_)
        *net_flits_out_ += delta_.netOut;
    if (inflight_)
        *inflight_ -= delta_.inflightDec;
    for (const auto &[tag, v] : delta_.samples) {
        switch (tag) {
          case 0: stats_.totalLatency.sample(v); break;
          case 1: stats_.totalLatencyHist.sample(v); break;
          case 2: stats_.netLatency.sample(v); break;
          case 3: stats_.queueLatencyHist.sample(v); break;
          case 4: stats_.traversalLatencyHist.sample(v); break;
          case 5: stats_.serializationLatencyHist.sample(v); break;
        }
    }
    // Reset scalars in place; the vectors keep their capacity.
    delta_.samples.clear();
    delta_.dirty = false;
    delta_.flitsInjected = delta_.flitsEjected = 0;
    delta_.packetsInjected = delta_.packetsEjected = 0;
    delta_.nodeInjFlits = delta_.nodeEjFlits = 0;
    delta_.nodeInjBytes = delta_.nodeEjBytes = 0;
    delta_.netIn = delta_.netOut = delta_.inflightDec = 0;
}

void
NetworkInterface::flushDeferredDeliveries()
{
    for (auto &[pkt, cyc] : delta_.deliveries) {
        if (sink_)
            sink_->deliver(std::move(pkt), cyc);
        else
            pkt.reset();
    }
    delta_.deliveries.clear();
}

NiAuditInfo
NetworkInterface::audit() const
{
    const NiSlabs &s = *nslab_;
    NiAuditInfo info;
    info.pendingInject = s.pendingInject[ni_];
    info.ejOccupancyCounter = s.ejOccupancy[ni_];
    info.ejCapacity = params_.ejBufferFlits;
    info.idle = idle();
    auto track = [&info](const Packet &pkt) {
        if (pkt.createdCycle != INVALID_CYCLE &&
            (info.oldestCreated == INVALID_CYCLE ||
             pkt.createdCycle < info.oldestCreated)) {
            info.oldestCreated = pkt.createdCycle;
        }
    };
    for (unsigned c = 0; c < vc_map_.protoClasses; ++c) {
        info.queuedPackets += s.qSize(qbase_ + c);
        s.forEachQueued(qbase_ + c,
                        [&](const PacketPtr &pkt) { track(*pkt); });
    }
    for (unsigned p = 0; p < ports_; ++p) {
        for (unsigned vc = 0; vc < vcs_; ++vc) {
            const std::size_t slot = sbase_ + p * vcs_ + vc;
            if (!s.actValid[slot])
                continue;
            ++info.activeSlots;
            track(*s.actPkt[slot]);
        }
    }
    for (unsigned p = 0; p < ej_ports_; ++p) {
        const std::size_t ring = ebase_ + p;
        info.ejFlits += s.ejSize(ring);
        info.maxEjPortOccupancy =
            std::max(info.maxEjPortOccupancy, s.ejSize(ring));
        s.forEachEjFlit(ring, [&](const Flit &flit) {
            if (flit.tail)
                ++info.ejTails;
            track(*flit.pkt);
        });
    }
    return info;
}

void
NetworkInterface::save(SnapshotWriter &w) const
{
    // Serialization order matches the original per-object layout
    // exactly, so moving the containers into the arena did not bump
    // the snapshot format.
    const NiSlabs &s = *nslab_;
    w.tag("NIFC");
    tenoc_assert(!delta_.dirty, "NI snapshot with pending deferred stats");
    w.u32(s.pendingInject[ni_]);
    w.u32(s.ejOccupancy[ni_]);
    w.u64(vc_map_.protoClasses);
    for (unsigned c = 0; c < vc_map_.protoClasses; ++c) {
        w.u64(s.qSize(qbase_ + c));
        s.forEachQueued(qbase_ + c, [&](const PacketPtr &pkt) {
            savePacket(w, pkt);
        });
    }
    for (unsigned p = 0; p < ports_; ++p) {
        for (unsigned vc = 0; vc < vcs_; ++vc) {
            const std::size_t slot = sbase_ + p * vcs_ + vc;
            w.boolean(s.actValid[slot] != 0);
            if (!s.actValid[slot])
                continue;
            savePacket(w, s.actPkt[slot]);
            w.u64(s.actFlits[slot].size());
            for (const Flit &flit : s.actFlits[slot])
                saveFlit(w, flit);
            w.u32(s.actNext[slot]);
        }
    }
    for (const unsigned rr : lane_rr_)
        w.u32(rr);
    for (const unsigned rr : vc_rr_)
        w.u32(rr);
    w.u32(class_rr_);
    w.u32(port_rr_);
    for (unsigned p = 0; p < ej_ports_; ++p) {
        w.u64(s.ejSize(ebase_ + p));
        s.forEachEjFlit(ebase_ + p,
                        [&](const Flit &flit) { saveFlit(w, flit); });
    }
}

void
NetworkInterface::restore(SnapshotReader &r)
{
    NiSlabs &s = *nslab_;
    r.tag("NIFC");
    s.pendingInject[ni_] = r.u32();
    s.ejOccupancy[ni_] = r.u32();
    const std::uint64_t classes = r.u64();
    tenoc_assert(classes == vc_map_.protoClasses,
                 "NI class count mismatch");
    for (unsigned c = 0; c < vc_map_.protoClasses; ++c) {
        const std::size_t q = qbase_ + c;
        while (s.qSize(q) != 0)
            s.qPop(q);
        const std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i)
            s.qPush(q, loadPacket(r));
    }
    for (unsigned p = 0; p < ports_; ++p) {
        for (unsigned vc = 0; vc < vcs_; ++vc) {
            const std::size_t slot = sbase_ + p * vcs_ + vc;
            const bool valid = r.boolean();
            s.actValid[slot] = valid ? 1 : 0;
            if (!valid) {
                s.actPkt[slot].reset();
                s.actFlits[slot].clear();
                s.actNext[slot] = 0;
                continue;
            }
            s.actPkt[slot] = loadPacket(r);
            s.actFlits[slot].clear();
            const std::uint64_t n = r.u64();
            for (std::uint64_t i = 0; i < n; ++i)
                s.actFlits[slot].push_back(loadFlit(r));
            s.actNext[slot] = r.u32();
        }
    }
    for (unsigned &rr : lane_rr_)
        rr = r.u32();
    for (unsigned &rr : vc_rr_)
        rr = r.u32();
    class_rr_ = r.u32();
    port_rr_ = r.u32();
    for (unsigned p = 0; p < ej_ports_; ++p) {
        const std::size_t ring = ebase_ + p;
        while (s.ejSize(ring) != 0)
            s.ejPop(ring);
        const std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i)
            s.ejPush(ring, loadFlit(r));
    }
}

} // namespace tenoc
