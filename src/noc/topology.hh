/**
 * @file
 * 2D mesh topology: node coordinates, router kinds (full/half), and
 * memory-controller placements.
 *
 * Two placements from the paper:
 *  - TOP_BOTTOM (Fig. 3): MCs on the top and bottom rows, adjacent,
 *    as in Intel's 80-core and Tilera TILE64 layouts.
 *  - CHECKERBOARD (Fig. 12): MCs staggered across the chip at
 *    half-router (odd-parity) positions.
 *
 * Router kinds: in a checkerboard organization routers at odd-parity
 * cells ((x + y) % 2 == 1) are half-routers (Sec. IV-A).
 */

#ifndef TENOC_NOC_TOPOLOGY_HH
#define TENOC_NOC_TOPOLOGY_HH

#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace tenoc
{

/** Mesh port directions (also router port indices 0..3). */
enum Direction : unsigned
{
    DIR_WEST = 0,
    DIR_EAST = 1,
    DIR_NORTH = 2,
    DIR_SOUTH = 3,
    NUM_DIRS = 4
};

/** Sentinel returned by routing when the packet has arrived. */
inline constexpr unsigned PORT_EJECT = NUM_DIRS;

/** @return the opposite mesh direction. */
constexpr Direction
opposite(Direction d)
{
    switch (d) {
      case DIR_WEST: return DIR_EAST;
      case DIR_EAST: return DIR_WEST;
      case DIR_NORTH: return DIR_SOUTH;
      case DIR_SOUTH: return DIR_NORTH;
      default: return DIR_WEST;
    }
}

/** @return short name ("W","E","N","S") of a direction. */
const char *dirName(unsigned d);

/** Memory controller placement schemes. */
enum class McPlacement
{
    TOP_BOTTOM,   ///< baseline: MCs packed on top and bottom rows
    CHECKERBOARD, ///< staggered placement at half-router cells
    CUSTOM        ///< user-specified coordinates
};

/** Topology construction parameters. */
struct TopologyParams
{
    unsigned rows = 6;
    unsigned cols = 6;
    unsigned numMcs = 8;
    McPlacement placement = McPlacement::TOP_BOTTOM;
    /** When true, odd-parity cells hold half-routers (Sec. IV-A). */
    bool checkerboardRouters = false;
    /** MC coordinates for McPlacement::CUSTOM, as (x, y) pairs. */
    std::vector<std::pair<unsigned, unsigned>> customMcs;
};

/**
 * Immutable mesh topology with node/coordinate mapping, MC placement,
 * and router-kind queries.  Coordinates: x grows east, y grows south;
 * node ids are row-major (id = y * cols + x).
 */
class Topology
{
  public:
    explicit Topology(const TopologyParams &params);

    unsigned rows() const { return params_.rows; }
    unsigned cols() const { return params_.cols; }
    unsigned numNodes() const { return params_.rows * params_.cols; }

    NodeId nodeAt(unsigned x, unsigned y) const;
    unsigned xOf(NodeId n) const { return n % params_.cols; }
    unsigned yOf(NodeId n) const { return n / params_.cols; }

    /** @return true if the node hosts a memory controller + L2 bank. */
    bool isMc(NodeId n) const { return is_mc_[n]; }

    /** @return true if the node's router is a half-router. */
    bool isHalfRouter(NodeId n) const { return is_half_[n]; }

    /** @return checkerboard parity of a cell (1 = half-router cell). */
    static unsigned parity(unsigned x, unsigned y) { return (x + y) % 2; }

    const std::vector<NodeId> &mcNodes() const { return mc_nodes_; }
    const std::vector<NodeId> &computeNodes() const
    {
        return compute_nodes_;
    }

    /** @return the neighbour of `n` in direction `d`, or INVALID_NODE. */
    NodeId neighbor(NodeId n, Direction d) const;

    /** Minimal hop count between two nodes. */
    unsigned hopDistance(NodeId a, NodeId b) const;

    const TopologyParams &params() const { return params_; }

  private:
    void placeMcs();
    void validate() const;

    TopologyParams params_;
    std::vector<bool> is_mc_;
    std::vector<bool> is_half_;
    std::vector<NodeId> mc_nodes_;
    std::vector<NodeId> compute_nodes_;
};

/**
 * The staggered "X" placement used as the default checkerboard MC
 * placement for a 6x6 mesh with 8 MCs (all at odd-parity cells, spread
 * over both diagonals; Sec. V-B picks the best of several valid
 * staggered placements).
 */
std::vector<std::pair<unsigned, unsigned>> defaultCheckerboardMcs6x6();

/**
 * Renders the mesh as ASCII art: one cell per router, `M` for MC
 * nodes, `C` for compute nodes, lowercase for half-routers
 * (e.g. `m` = MC on a half-router, the checkerboard requirement).
 */
std::string renderTopology(const Topology &topo);

} // namespace tenoc

#endif // TENOC_NOC_TOPOLOGY_HH
