/**
 * @file
 * 2D grid topologies: node coordinates, router kinds (full/half),
 * memory-controller placements, optional wrap-around links (torus) and
 * concentration (multiple terminals per router).
 *
 * Two placements from the paper:
 *  - TOP_BOTTOM (Fig. 3): MCs on the top and bottom rows, adjacent,
 *    as in Intel's 80-core and Tilera TILE64 layouts.
 *  - CHECKERBOARD (Fig. 12): MCs staggered across the chip at
 *    half-router (odd-parity) positions.
 *
 * Router kinds: in a checkerboard organization routers at odd-parity
 * cells ((x + y) % 2 == 1) are half-routers (Sec. IV-A).
 *
 * Topology kinds (see docs/topologies.md):
 *  - MESH:  the paper's baseline; edge routers have no wrap links.
 *  - TORUS: every row and column closes into a ring; deadlock freedom
 *    comes from dateline VC classes (see TorusRouting in routing.hh).
 *
 * Concentration multiplies the terminals behind each router
 * (concentration cores per compute router, concentration MCs' worth of
 * injection/ejection bandwidth per MC router) without changing the
 * router grid — the concentrated-mesh organization.
 */

#ifndef TENOC_NOC_TOPOLOGY_HH
#define TENOC_NOC_TOPOLOGY_HH

#include <string>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace tenoc
{

/** Mesh port directions (also router port indices 0..3). */
enum Direction : unsigned
{
    DIR_WEST = 0,
    DIR_EAST = 1,
    DIR_NORTH = 2,
    DIR_SOUTH = 3,
    NUM_DIRS = 4
};

/** Sentinel returned by routing when the packet has arrived. */
inline constexpr unsigned PORT_EJECT = NUM_DIRS;

/**
 * @return the opposite mesh direction.
 *
 * Panics on any non-direction input (e.g. PORT_EJECT or an injection
 * port index): callers that reach here with a port index have a wiring
 * or port-arithmetic bug, and silently mapping it to a direction would
 * mis-route instead of failing loudly.  Still usable in constant
 * expressions for genuine directions.
 */
constexpr Direction
opposite(Direction d)
{
    switch (d) {
      case DIR_WEST: return DIR_EAST;
      case DIR_EAST: return DIR_WEST;
      case DIR_NORTH: return DIR_SOUTH;
      case DIR_SOUTH: return DIR_NORTH;
      default: break;
    }
    tenoc_panic("opposite() of non-direction port index ",
                static_cast<unsigned>(d));
}

/**
 * @return short name ("W","E","N","S") of a direction, or "EJ" for
 * PORT_EJECT (the routing sentinel).  Panics beyond that: port indices
 * above PORT_EJECT are router-local injection/ejection ports whose
 * meaning depends on port side — use inputPortName()/outputPortName().
 */
const char *dirName(unsigned d);

/** @return label of a router *input* port index ("W".."S", "INJ0"..). */
std::string inputPortName(unsigned in);

/** @return label of a router *output* port index ("W".."S", "EJ0"..). */
std::string outputPortName(unsigned out);

/** Link structure of the 2D grid. */
enum class TopoKind
{
    MESH, ///< open grid; edge routers have no wrap links
    TORUS ///< rows and columns close into rings (wrap links)
};

/** @return "mesh" / "torus". */
const char *topoKindName(TopoKind kind);

/** Memory controller placement schemes. */
enum class McPlacement
{
    TOP_BOTTOM,   ///< baseline: MCs packed on top and bottom rows
    CHECKERBOARD, ///< staggered placement at half-router cells
    CUSTOM        ///< user-specified coordinates
};

/** Topology construction parameters. */
struct TopologyParams
{
    /** Link structure: open mesh (default) or wrap-around torus. */
    TopoKind kind = TopoKind::MESH;
    unsigned rows = 6;
    unsigned cols = 6;
    unsigned numMcs = 8;
    /**
     * Terminals per router (concentrated mesh): each compute router
     * hosts `concentration` cores, each MC router `concentration` MCs'
     * worth of terminal bandwidth.  1 = the paper's unconcentrated
     * baseline.  Routers gain concentration x the usual injection and
     * ejection ports (see MeshNetwork); node ids still name routers.
     */
    unsigned concentration = 1;
    McPlacement placement = McPlacement::TOP_BOTTOM;
    /** When true, odd-parity cells hold half-routers (Sec. IV-A). */
    bool checkerboardRouters = false;
    /** MC coordinates for McPlacement::CUSTOM, as (x, y) pairs. */
    std::vector<std::pair<unsigned, unsigned>> customMcs;
};

/**
 * Immutable mesh topology with node/coordinate mapping, MC placement,
 * and router-kind queries.  Coordinates: x grows east, y grows south;
 * node ids are row-major (id = y * cols + x).
 */
class Topology
{
  public:
    explicit Topology(const TopologyParams &params);

    unsigned rows() const { return params_.rows; }
    unsigned cols() const { return params_.cols; }
    unsigned numNodes() const { return params_.rows * params_.cols; }

    NodeId nodeAt(unsigned x, unsigned y) const;
    unsigned xOf(NodeId n) const { return n % params_.cols; }
    unsigned yOf(NodeId n) const { return n / params_.cols; }

    /** @return true when rows/columns wrap into rings. */
    bool isTorus() const { return params_.kind == TopoKind::TORUS; }

    /** Terminals per router (1 = unconcentrated). */
    unsigned concentration() const { return params_.concentration; }

    /** @return true if the node hosts a memory controller + L2 bank. */
    bool isMc(NodeId n) const { return is_mc_[n]; }

    /** @return true if the node's router is a half-router. */
    bool isHalfRouter(NodeId n) const { return is_half_[n]; }

    /** @return checkerboard parity of a cell (1 = half-router cell). */
    static unsigned parity(unsigned x, unsigned y) { return (x + y) % 2; }

    const std::vector<NodeId> &mcNodes() const { return mc_nodes_; }
    const std::vector<NodeId> &computeNodes() const
    {
        return compute_nodes_;
    }

    /**
     * @return the neighbour of `n` in direction `d`.  On a mesh,
     * INVALID_NODE past an edge; on a torus the coordinate wraps, so
     * every direction always has a neighbour (a wrap link where the
     * step crosses the edge).
     */
    NodeId neighbor(NodeId n, Direction d) const;

    /** Minimal hop count between two nodes (wrap-aware on a torus). */
    unsigned hopDistance(NodeId a, NodeId b) const;

    const TopologyParams &params() const { return params_; }

  private:
    void placeMcs();
    void validate() const;

    TopologyParams params_;
    std::vector<bool> is_mc_;
    std::vector<bool> is_half_;
    std::vector<NodeId> mc_nodes_;
    std::vector<NodeId> compute_nodes_;
};

/**
 * The staggered "X" placement used as the default checkerboard MC
 * placement for a 6x6 mesh with 8 MCs (all at odd-parity cells, spread
 * over both diagonals; Sec. V-B picks the best of several valid
 * staggered placements).
 */
std::vector<std::pair<unsigned, unsigned>> defaultCheckerboardMcs6x6();

/**
 * Renders the mesh as ASCII art: one cell per router, `M` for MC
 * nodes, `C` for compute nodes, lowercase for half-routers
 * (e.g. `m` = MC on a half-router, the checkerboard requirement).
 */
std::string renderTopology(const Topology &topo);

} // namespace tenoc

#endif // TENOC_NOC_TOPOLOGY_HH
