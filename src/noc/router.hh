/**
 * @file
 * Virtual-channel wormhole router.
 *
 * Canonical input-queued VC router with credit-based flow control and
 * separable (iSLIP-style) allocation, per Table III of the paper:
 *
 *   - per-packet route computation (RC) at the head flit,
 *   - VC allocation (VA): output-side round-robin among waiting heads,
 *   - switch allocation (SA): input-first round-robin, then
 *     output-side round-robin,
 *   - switch traversal (ST): one flit per input and per output per
 *     cycle, credits decremented on departure and returned upstream
 *     when flits leave this router's input buffers.
 *
 * Pipeline depth is modeled as a minimum residency: a flit arriving at
 * cycle t departs no earlier than t + depth, so arrival-to-arrival hop
 * latency is depth + channelLatency (5 cycles for the baseline).  The
 * baseline full router uses depth 4, half-routers depth 3 (Sec. V-A),
 * the aggressive router of Sec. III-C depth 1.
 *
 * Half-routers (Fig. 13) restrict connectivity: through traffic may
 * only continue straight (E<->W, N<->S), while injection reaches all
 * outputs and all inputs reach ejection.
 *
 * Multi-port MC routers (Sec. IV-D, Fig. 15(b)) add extra injection
 * and/or ejection ports that raise terminal bandwidth without touching
 * link bandwidth.  Ejection-port choice is round-robin at RC time.
 *
 * Storage layout: all per-VC state (input state machines, flit rings,
 * output VC ownership/credits) lives in a VcSlabs arena.  A router
 * built by MeshNetwork views contiguous index ranges of the network's
 * shared arena (see slab.hh); a standalone router owns a private one.
 * The pipeline stages (routeCompute/vcAllocate/switchAllocate) are
 * public so the network can batch one stage across all active routers
 * — each stage early-outs in O(vcs) contiguous loads when it has no
 * eligible VC, which is exactly the case where running it would have
 * been a no-op.
 */

#ifndef TENOC_NOC_ROUTER_HH
#define TENOC_NOC_ROUTER_HH

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "common/stats.hh"
#include "noc/activity.hh"
#include "noc/arbiter.hh"
#include "noc/buffer.hh"
#include "noc/channel.hh"
#include "noc/routing.hh"
#include "noc/slab.hh"
#include "noc/topology.hh"
#include "noc/vc_map.hh"

namespace tenoc
{

namespace telemetry
{
class TraceSink;
} // namespace telemetry

/** Destination of ejected flits (implemented by NetworkInterface). */
class EjectionSink
{
  public:
    virtual ~EjectionSink() = default;
    /** @return true if one more flit fits in ejection buffer `port`. */
    virtual bool ejectReady(unsigned ej_port) const = 0;
    /** Delivers a flit to ejection buffer `port`. */
    virtual void ejectFlit(unsigned ej_port, Flit &&flit, Cycle now) = 0;
};

/** One mesh router. */
class Router
{
  public:
    struct Params
    {
        VcMap vcMap;
        unsigned vcDepth = 8;          ///< flit slots per VC (Table III)
        unsigned pipelineDepth = 4;    ///< min cycles of residency
        bool half = false;             ///< half-router connectivity
        unsigned numInjPorts = 1;
        unsigned numEjPorts = 1;
        /**
         * Age-based switch allocation: grant the contender whose
         * packet entered the network earliest instead of round-robin.
         * A global-fairness mechanism in the spirit of the work the
         * paper cites for WP's slowdown (Sec. V-B / [29]); off by
         * default (Table III uses iSLIP).
         */
        bool agePriority = false;
    };

    /** Standalone router owning its own slab storage (unit tests). */
    Router(NodeId id, const Topology &topo, RoutingAlgorithm &routing,
           const Params &params);

    /**
     * Router viewing a network-owned arena: input VCs
     * [in_vc_base, in_vc_base + numInputs*vcs) and output VCs
     * [out_vc_base, out_vc_base + numOutputs*vcs) of `slab`.
     */
    Router(NodeId id, const Topology &topo, RoutingAlgorithm &routing,
           const Params &params, VcSlabs &slab, std::size_t in_vc_base,
           std::size_t out_vc_base);

    NodeId id() const { return id_; }
    const Params &params() const { return params_; }
    unsigned numVcs() const { return nvcs_; }
    unsigned numInputs() const { return NUM_DIRS + params_.numInjPorts; }
    unsigned numOutputs() const { return NUM_DIRS + params_.numEjPorts; }

    /** Wires the output in direction `d` and its returning credits. */
    void connectOutput(Direction d, Channel<Flit> *flit_out,
                       Channel<Credit> *credit_in);
    /** Wires the input in direction `d` and its outgoing credits. */
    void connectInput(Direction d, Channel<Flit> *flit_in,
                      Channel<Credit> *credit_out);
    /** Attaches the local NI as the ejection sink. */
    void setEjectionSink(EjectionSink *sink) { sink_ = sink; }

    /**
     * Registers this router in its network's active set (idle-skip
     * scheduling).  The router marks itself whenever an NI injects a
     * flit; its channels mark it on every send (see
     * Channel::setWakeTarget).
     */
    void
    setActivity(ActiveSet *set, unsigned idx)
    {
        active_set_ = set;
        active_idx_ = idx;
    }

    /**
     * Registers this router with its network's arrival scheduler under
     * receiver index `idx` and points every attached channel at it
     * (channels attached later are pointed on connect).  readInputs
     * then drains only ports whose pending bit is set — bit d for the
     * flit link in direction d, bit NUM_DIRS+d for the returning
     * credit link of output d — and couldWork becomes O(1).
     */
    void setArrival(ArrivalScheduler *sched, unsigned idx);

    /** Pending-bit of the flit link arriving from direction `d`. */
    static constexpr std::uint32_t
    arrivalFlitBit(unsigned d)
    {
        return std::uint32_t{1} << d;
    }

    /** Pending-bit of the credit link returning on output `d`. */
    static constexpr std::uint32_t
    arrivalCreditBit(unsigned d)
    {
        return std::uint32_t{1} << (NUM_DIRS + d);
    }

    /** Points router traversals at a network-level running counter so
     *  telemetry can sample total flit hops without re-summing. */
    void setTraversalCounter(std::uint64_t *c) { net_traversed_ = c; }

    /**
     * @return true while this router may still have work: flits
     * buffered, or items (flits or returning credits) in flight on its
     * attached channels.  Used to retire routers from the active set;
     * a router for which this is false performs no state change when
     * ticked, so skipping it is bit-exact.
     */
    bool couldWork() const;

    /**
     * @return true if any attached channel holds an item that has
     * matured (arrival <= now) but has not been drained.  Used by the
     * invariant checker's activity audit: an unmarked router may have
     * items in flight (the arrival scheduler wakes it on the arrival
     * cycle), but never a matured, undrained one.
     */
    bool hasMaturedArrival(Cycle now) const;

    // --- NI injection access (same node, zero-latency handshake) ---
    /** Free slots in injection-port buffer `inj` (0-based), VC `vc`. */
    unsigned injFreeSlots(unsigned inj, unsigned vc) const;
    /** Pushes a flit into injection-port buffer `inj`. */
    void injectFlit(unsigned inj, Flit &&flit, Cycle now);

    // --- simulation phases (network drives these each icnt cycle) ---
    /** Phase 1: drain arriving flits and credits from channels. */
    void readInputs(Cycle now);
    /** Phase 2: RC, VA, SA, ST. */
    void compute(Cycle now);

    // Individual pipeline stages, exposed so MeshNetwork can batch one
    // stage across all active routers (better locality than ticking a
    // whole router at a time).  Each early-outs when no VC is eligible
    // — a case in which running it would not change any state, return
    // any grant, or emit any trace event, so skipping is bit-exact.
    /** RC: assign output ports to idle VCs with buffered heads. */
    void routeCompute(Cycle now);
    /** VA: round-robin output-VC grants to routed head flits. */
    void vcAllocate(Cycle now);
    /** SA + ST: separable switch allocation, then traversal. */
    void switchAllocate(Cycle now);

    /** @return true if no flits are buffered here (O(inputs)). */
    bool empty() const;

    /** @return true if input `in` may be switched to output `out`. */
    bool connectivityAllows(unsigned in, unsigned out) const;

    // --- stats ---
    std::uint64_t flitsTraversed() const { return flits_traversed_; }
    std::uint64_t bufferedFlits() const;

    /** Flits sent on the outgoing link in direction `d` (per-link
     *  utilization; ejection traffic is not counted here). */
    std::uint64_t linkFlits(unsigned d) const { return link_flits_[d]; }

    /** Attaches (or detaches, with nullptr) a flit-event tracer. */
    void setTracer(telemetry::TraceSink *tracer) { tracer_ = tracer; }

    // --- introspection (invariant checker / watchdog / tests) ---
    /** Pipeline state of input VC (`in`, `vc`). */
    VcState vcState(unsigned in, unsigned vc) const
    {
        return inputs_[in].state(vc);
    }
    /** Output port assigned to input VC (`in`, `vc`) by RC. */
    unsigned vcOutPort(unsigned in, unsigned vc) const
    {
        return inputs_[in].outPort(vc);
    }
    /** Output VC granted to input VC (`in`, `vc`) by VA. */
    unsigned vcOutVc(unsigned in, unsigned vc) const
    {
        return inputs_[in].outVc(vc);
    }
    /** Flits buffered on input VC (`in`, `vc`). */
    std::size_t vcOccupancy(unsigned in, unsigned vc) const
    {
        return inputs_[in].occupancy(vc);
    }
    /** Head flit of input VC (`in`, `vc`), or nullptr when empty. */
    const Flit *
    vcFront(unsigned in, unsigned vc) const
    {
        return inputs_[in].empty(vc) ? nullptr : &inputs_[in].front(vc);
    }
    /** Credits held for downstream VC (`out`, `vc`). */
    unsigned outputCredits(unsigned out, unsigned vc) const
    {
        return slab_->outCredits[ov(out, vc)];
    }
    /** @return true if output VC (`out`, `vc`) is owned by a packet. */
    bool outputVcOwned(unsigned out, unsigned vc) const
    {
        return slab_->outOwned[ov(out, vc)] != 0;
    }
    /** Owning input port of output VC (`out`, `vc`) (owned only). */
    unsigned outputVcOwnerIn(unsigned out, unsigned vc) const
    {
        return slab_->outOwnerIn[ov(out, vc)];
    }
    /** Owning input VC of output VC (`out`, `vc`) (owned only). */
    unsigned outputVcOwnerVc(unsigned out, unsigned vc) const
    {
        return slab_->outOwnerVc[ov(out, vc)];
    }
    /** @return true if direction output `d` is wired to a channel. */
    bool
    outputConnected(unsigned d) const
    {
        return d < NUM_DIRS && outputs_[d].flitOut != nullptr;
    }
    /** Calls f(in, vc, flit) for every buffered flit. */
    template <typename F>
    void
    forEachBufferedFlit(F &&f) const
    {
        for (unsigned in = 0; in < numInputs(); ++in) {
            inputs_[in].forEachFlit(
                [&](unsigned vc, const Flit &flit) { f(in, vc, flit); });
        }
    }

    // --- checkpoint/restore ---
    /** Serializes all dynamic router state (buffers, VC ownership,
     *  credits, arbiter pointers, counters). */
    void save(SnapshotWriter &w) const;

    /** Restores state written by save(); structural parameters must
     *  match the saving router. */
    void restore(SnapshotReader &r);

    // --- fault hooks (FaultEngine / mutation tests) ---
    /**
     * Deliberately leaks one downstream credit on output VC
     * (`out`, `vc`): the buffer slot it represents is never usable
     * again.  No-op at zero credits.  @return true if a credit was
     * dropped.
     */
    bool
    dropCredit(unsigned out, unsigned vc)
    {
        auto &credits = slab_->outCredits[ov(out, vc)];
        if (credits == 0)
            return false;
        --credits;
        return true;
    }

  private:
    void initPorts();

    // Fallback allocators for geometries whose requestor counts exceed
    // 64 (so per-stage request state cannot pack into one word); the
    // request sets live in uint64 word-mask arrays and grants come
    // from RoundRobinArbiter::grantWords, so concentrated/high-radix
    // routers keep O(words) arbitration instead of falling back to
    // vector<bool> scans.  Produces grants identical to the mask fast
    // paths in vcAllocate/switchAllocate.
    void vcAllocateWide(Cycle now);
    void switchAllocateWide(Cycle now);

    bool isInjection(unsigned in) const { return in >= NUM_DIRS; }
    bool isEjection(unsigned out) const { return out >= NUM_DIRS; }

    /** Global slab index of output VC (`out`, `vc`). */
    std::size_t ov(unsigned out, unsigned vc) const
    {
        return out_base_ + out * nvcs_ + vc;
    }

    /** Chooses an ejection output port round-robin. */
    unsigned nextEjectionPort();

    /** Network entry time of a flit's packet (for age priority). */
    static Cycle packetAge(const Flit &f);

    NodeId id_;
    const Topology &topo_;
    RoutingAlgorithm &routing_;
    Params params_;
    unsigned nvcs_;
    EjectionSink *sink_ = nullptr;

    // Private arena for standalone routers; null when viewing the
    // network's shared slab.  Declared before the views into it.
    std::unique_ptr<VcSlabs> owned_slab_;
    VcSlabs *slab_;
    std::size_t in_base_;  ///< first global input-VC index
    std::size_t out_base_; ///< first global output-VC index

    std::vector<InputPort> inputs_;

    struct OutputPort
    {
        Channel<Flit> *flitOut = nullptr;   ///< null for ejection ports
        Channel<Credit> *creditIn = nullptr;
        RoundRobinArbiter vaArb;  ///< VC-allocation arbiter
        RoundRobinArbiter saArb;  ///< switch output arbiter
    };
    std::vector<OutputPort> outputs_;

    struct InputLink
    {
        Channel<Flit> *flitIn = nullptr;
        Channel<Credit> *creditOut = nullptr;
    };
    std::vector<InputLink> in_links_;

    std::vector<RoundRobinArbiter> sa_input_arb_; ///< per input port
    unsigned ej_rr_ = 0;

    std::uint64_t flits_traversed_ = 0;
    std::uint64_t *net_traversed_ = nullptr;
    std::array<std::uint64_t, NUM_DIRS> link_flits_{};
    telemetry::TraceSink *tracer_ = nullptr;

    ActiveSet *active_set_ = nullptr;
    unsigned active_idx_ = 0;
    ArrivalScheduler *arrival_sched_ = nullptr;
    unsigned arrival_idx_ = 0;

    // Allocation scratch, hoisted out of the per-cycle loops so the
    // hot path performs no heap allocation.
    /** True when numInputs*vcs <= 64: request sets pack into single
     *  words and the allocators run their mask fast paths. */
    bool mask_alloc_ = true;
    std::vector<std::uint64_t> va_out_reqs_; ///< per-output VA masks
    std::vector<std::uint64_t> sa_out_mask_; ///< per-output SA masks
    // Wide-path word geometry (requestor counts above 64).
    unsigned va_words_ = 1; ///< words per input-VC request set
    unsigned vc_words_ = 1; ///< words per per-input VC set
    unsigned in_words_ = 1; ///< words per input-port set
    /** Per-output VA requestor words: numOutputs * va_words_. */
    std::vector<std::uint64_t> va_wide_reqs_;
    /** Wide SA input-stage eligibility words: vc_words_. */
    std::vector<std::uint64_t> sa_vc_words_;
    /** Per-output wide SA requestor words: numOutputs * in_words_. */
    std::vector<std::uint64_t> sa_out_words_;
    std::vector<unsigned> sa_nominee_; ///< per input port
};

} // namespace tenoc

#endif // TENOC_NOC_ROUTER_HH
