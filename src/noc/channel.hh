/**
 * @file
 * Pipelined point-to-point channels.
 *
 * A Channel models a wire with a fixed latency in interconnect cycles:
 * items pushed at cycle t become visible to the receiver at cycle
 * t + latency.  Both flit channels and reverse credit channels use the
 * same primitive.
 */

#ifndef TENOC_NOC_CHANNEL_HH
#define TENOC_NOC_CHANNEL_HH

#include <optional>
#include <utility>

#include "common/log.hh"
#include "common/ring.hh"
#include "common/snapshot.hh"
#include "common/types.hh"
#include "noc/activity.hh"
#include "noc/arrival.hh"

namespace tenoc
{

/**
 * FIFO channel with delivery latency.  At most one item may be pushed
 * per cycle (enforced); receivers poll with receive(now).
 *
 * In-flight items live in an inline-storage ring (common/ring.hh): a
 * steady-state channel (population bounded by its latency) touches no
 * heap at all.  The ring makes channels non-copyable; networks store
 * them by value in a std::deque, which constructs in place and never
 * relocates.
 */
template <typename T>
class Channel
{
  public:
    explicit Channel(Cycle latency = 1) : latency_(latency) {}

    Cycle latency() const { return latency_; }

    /**
     * Registers the receiving component in its network's active set so
     * every send wakes it (idle-skip scheduling).  Optional: channels
     * without a wake target behave as before.
     */
    void
    setWakeTarget(ActiveSet *set, unsigned index)
    {
        wake_set_ = set;
        wake_idx_ = index;
    }

    /**
     * Registers the receiver with its network's arrival scheduler:
     * each send posts a wake at the delivery cycle (setting `bit` in
     * the receiver's pending-port word) instead of marking the
     * receiver immediately, so an idle receiver sleeps until the item
     * actually arrives.  Optional; without a scheduler the channel
     * falls back to mark-on-send through the wake target.
     */
    void
    setArrivalTarget(ArrivalScheduler *sched, unsigned index,
                     std::uint32_t bit)
    {
        sched_ = sched;
        sched_idx_ = index;
        sched_bit_ = bit;
    }

    /** Sends an item at cycle `now`; it arrives at now + latency. */
    void
    send(T item, Cycle now)
    {
        tenoc_assert(last_send_ == INVALID_CYCLE || now > last_send_,
                     "channel accepts at most one item per cycle");
        last_send_ = now;
        queue_.emplace_back(Entry{now + latency_, std::move(item)});
        if (sched_)
            sched_->schedule(now + latency_, sched_idx_, sched_bit_);
        else if (wake_set_)
            wake_set_->mark(wake_idx_);
    }

    /** @return the next item if it has arrived by cycle `now`. */
    std::optional<T>
    receive(Cycle now)
    {
        if (stalled_ || queue_.empty() || queue_.front().arrival > now)
            return std::nullopt;
        T item = std::move(queue_.front().item);
        queue_.pop_front();
        return item;
    }

    /**
     * Fault hook: while stalled the channel delivers nothing (items
     * keep accumulating and arrive in a burst once the stall clears,
     * like a repaired wire).  Clearing a stall re-marks the receiver
     * so idle-skip scheduling picks the backlog up.
     */
    void
    setStalled(bool stalled)
    {
        stalled_ = stalled;
        if (!stalled && !queue_.empty()) {
            // The backlog may already be matured (its wheel wakes
            // fired into a stalled channel and were consumed), so the
            // scheduler path must set the pending bit now rather than
            // wait for a wheel slot that will never fire again.
            if (sched_)
                sched_->wakeNow(sched_idx_, sched_bit_);
            else if (wake_set_)
                wake_set_->mark(wake_idx_);
        }
    }

    /** @return true while a link-stall fault is active. */
    bool stalled() const { return stalled_; }

    /** Calls f(item) for every in-flight item, oldest first. */
    template <typename F>
    void
    forEachInFlight(F &&f) const
    {
        queue_.forEach([&](const Entry &e) { f(e.item); });
    }

    /** @return true if no items are in flight. */
    bool empty() const { return queue_.empty(); }

    /** Number of items in flight. */
    std::size_t inFlight() const { return queue_.size(); }

    /** Delivery cycle of the earliest in-flight item (the channel is
     *  FIFO with constant latency, so the front is the earliest);
     *  INVALID_CYCLE when empty. */
    Cycle
    earliestArrival() const
    {
        return queue_.empty() ? INVALID_CYCLE : queue_.front().arrival;
    }

    /**
     * Restore-path helper: re-posts one scheduler wake per in-flight
     * item (the entries live in the wheel, which is not serialized —
     * it is rebuilt from the channels' arrival cycles).  Without a
     * scheduler, falls back to marking the receiver so wake-on-send
     * networks pick the restored backlog up.
     */
    void
    reschedulePending()
    {
        if (sched_) {
            queue_.forEach([&](const Entry &e) {
                sched_->schedule(e.arrival, sched_idx_, sched_bit_);
            });
        } else if (wake_set_ && !queue_.empty()) {
            wake_set_->mark(wake_idx_);
        }
    }

    /** Serializes dynamic state; `saveItem(w, item)` encodes one
     *  in-flight item (checkpoint/restore). */
    template <typename SaveItem>
    void
    save(SnapshotWriter &w, SaveItem &&saveItem) const
    {
        w.u64(last_send_);
        w.boolean(stalled_);
        w.u64(queue_.size());
        queue_.forEach([&](const Entry &e) {
            w.u64(e.arrival);
            saveItem(w, e.item);
        });
    }

    /** Restores state written by save(); `loadItem(r)` decodes one
     *  in-flight item. */
    template <typename LoadItem>
    void
    restore(SnapshotReader &r, LoadItem &&loadItem)
    {
        last_send_ = r.u64();
        stalled_ = r.boolean();
        queue_.clear();
        const std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i) {
            const Cycle arrival = r.u64();
            queue_.emplace_back(Entry{arrival, loadItem(r)});
        }
    }

  private:
    struct Entry
    {
        Cycle arrival;
        T item;
    };

    Cycle latency_;
    Cycle last_send_ = INVALID_CYCLE;
    bool stalled_ = false;
    RingQueue<Entry> queue_;
    ActiveSet *wake_set_ = nullptr;
    unsigned wake_idx_ = 0;
    ArrivalScheduler *sched_ = nullptr;
    unsigned sched_idx_ = 0;
    std::uint32_t sched_bit_ = 0;
};

/** Credit message: one freed buffer slot on a given VC. */
struct Credit
{
    unsigned vc = 0;
};

} // namespace tenoc

#endif // TENOC_NOC_CHANNEL_HH
