/**
 * @file
 * Pipelined point-to-point channels.
 *
 * A Channel models a wire with a fixed latency in interconnect cycles:
 * items pushed at cycle t become visible to the receiver at cycle
 * t + latency.  Both flit channels and reverse credit channels use the
 * same primitive.
 */

#ifndef TENOC_NOC_CHANNEL_HH
#define TENOC_NOC_CHANNEL_HH

#include <deque>
#include <optional>
#include <utility>

#include "common/log.hh"
#include "common/types.hh"

namespace tenoc
{

/**
 * FIFO channel with delivery latency.  At most one item may be pushed
 * per cycle (enforced); receivers poll with receive(now).
 */
template <typename T>
class Channel
{
  public:
    explicit Channel(Cycle latency = 1) : latency_(latency) {}

    Cycle latency() const { return latency_; }

    /** Sends an item at cycle `now`; it arrives at now + latency. */
    void
    send(T item, Cycle now)
    {
        tenoc_assert(last_send_ == INVALID_CYCLE || now > last_send_,
                     "channel accepts at most one item per cycle");
        last_send_ = now;
        queue_.emplace_back(now + latency_, std::move(item));
    }

    /** @return the next item if it has arrived by cycle `now`. */
    std::optional<T>
    receive(Cycle now)
    {
        if (queue_.empty() || queue_.front().first > now)
            return std::nullopt;
        T item = std::move(queue_.front().second);
        queue_.pop_front();
        return item;
    }

    /** @return true if no items are in flight. */
    bool empty() const { return queue_.empty(); }

    /** Number of items in flight. */
    std::size_t inFlight() const { return queue_.size(); }

  private:
    Cycle latency_;
    Cycle last_send_ = INVALID_CYCLE;
    std::deque<std::pair<Cycle, T>> queue_;
};

/** Credit message: one freed buffer slot on a given VC. */
struct Credit
{
    unsigned vc = 0;
};

} // namespace tenoc

#endif // TENOC_NOC_CHANNEL_HH
