/**
 * @file
 * Open-loop traffic endpoints for the Fig. 21 experiments: Bernoulli
 * request generators at compute nodes, echo sinks at MC nodes that
 * return multi-flit read replies, and measurement collectors.
 *
 * Traffic is many-to-few-to-many: compute nodes send 1-flit read
 * requests to MCs; each MC answers with a 4-flit reply (only read
 * traffic, as in the paper's open-loop runs).
 */

#ifndef TENOC_NOC_TRAFFIC_HH
#define TENOC_NOC_TRAFFIC_HH

#include <deque>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "noc/network.hh"

namespace tenoc
{

/** Chooses request destinations among the MC nodes. */
class DestinationChooser
{
  public:
    /**
     * @param mcs MC node list
     * @param hotspot_fraction fraction of requests directed at mcs[0];
     *        0 gives uniform random over all MCs
     */
    DestinationChooser(std::vector<NodeId> mcs, double hotspot_fraction);

    NodeId pick(Rng &rng) const;

    /**
     * Picks a destination that is never `exclude` (a node must not
     * address itself).  Re-draws until the draw differs — conditioning
     * the distribution on "!= exclude" — which keeps the remaining
     * destinations at their exact relative probabilities, where a
     * shift/modulo skip would bias the neighbour of `exclude`.
     */
    NodeId pick(Rng &rng, NodeId exclude) const;

  private:
    std::vector<NodeId> mcs_;
    double hotspot_fraction_;
};

/**
 * Measurement-window accounting shared by the open-loop sinks: flits
 * and packets of measurement-tagged packets that completed delivery.
 * Throughput derived from these counters covers exactly the packets
 * whose latency is sampled (tag bit 0), so latency and accepted-load
 * statistics describe the same population — packets generated during
 * warmup contribute to neither.
 */
struct OpenLoopMeasure
{
    std::uint64_t taggedFlitsDelivered = 0;
    std::uint64_t taggedPacketsDelivered = 0;
};

/**
 * Bernoulli packet source with an unbounded source queue (the queue
 * lets offered load exceed accepted throughput so saturation is
 * observable).
 */
class OpenLoopSource
{
  public:
    OpenLoopSource(NodeId node, double rate, unsigned request_flits,
                   const DestinationChooser &dests, Network &net,
                   Rng &rng);

    /** Generates and injects; call once per interconnect cycle. */
    void cycle(Cycle now, bool measuring);

    std::size_t queueDepth() const { return queue_.size(); }
    std::uint64_t generated() const { return generated_; }

  private:
    NodeId node_;
    double rate_;
    unsigned request_flits_;
    const DestinationChooser &dests_;
    Network &net_;
    Rng &rng_;
    std::deque<PacketPtr> queue_;
    std::uint64_t generated_ = 0;
};

/**
 * MC-side sink: accepts requests and echoes a reply of
 * `reply_flits` flits to the requester.
 */
class McEchoSink : public PacketSink
{
  public:
    McEchoSink(NodeId node, unsigned reply_flits, Network &net,
               Accumulator &req_latency,
               OpenLoopMeasure *measure = nullptr);

    bool tryReserve(const Packet &pkt) override;
    void deliver(PacketPtr pkt, Cycle now) override;

    /** Injects pending replies; call once per interconnect cycle. */
    void cycle(Cycle now);

    bool idle() const { return replies_.empty(); }

  private:
    NodeId node_;
    unsigned reply_flits_;
    Network &net_;
    Accumulator &req_latency_;
    OpenLoopMeasure *measure_;
    std::deque<PacketPtr> replies_;
};

/** Core-side sink: collects replies and samples their latency. */
class CollectorSink : public PacketSink
{
  public:
    explicit CollectorSink(Accumulator &latency,
                           OpenLoopMeasure *measure = nullptr)
        : latency_(latency), measure_(measure)
    {}

    bool tryReserve(const Packet &pkt) override
    {
        (void)pkt;
        return true;
    }

    void
    deliver(PacketPtr pkt, Cycle now) override
    {
        // tag bit 0 marks packets generated in the measurement window
        if (pkt->tag & 1) {
            latency_.sample(static_cast<double>(now - pkt->createdCycle));
            if (measure_) {
                measure_->taggedFlitsDelivered += pkt->sizeFlits;
                ++measure_->taggedPacketsDelivered;
            }
        }
    }

  private:
    Accumulator &latency_;
    OpenLoopMeasure *measure_;
};

} // namespace tenoc

#endif // TENOC_NOC_TRAFFIC_HH
