/**
 * @file
 * Open-loop traffic endpoints for the Fig. 21 experiments: Bernoulli
 * request generators at compute nodes, echo sinks at MC nodes that
 * return multi-flit read replies, and measurement collectors.
 *
 * Traffic is many-to-few-to-many: compute nodes send 1-flit read
 * requests to MCs; each MC answers with a 4-flit reply (only read
 * traffic, as in the paper's open-loop runs).
 */

#ifndef TENOC_NOC_TRAFFIC_HH
#define TENOC_NOC_TRAFFIC_HH

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "noc/network.hh"

namespace tenoc
{

/** Chooses request destinations among the MC nodes. */
class DestinationChooser
{
  public:
    /**
     * @param mcs MC node list
     * @param hotspot_fraction fraction of requests directed at mcs[0];
     *        0 gives uniform random over all MCs
     */
    DestinationChooser(std::vector<NodeId> mcs, double hotspot_fraction);

    NodeId pick(Rng &rng) const;

    /**
     * Picks a destination that is never `exclude` (a node must not
     * address itself).  Re-draws until the draw differs — conditioning
     * the distribution on "!= exclude" — which keeps the remaining
     * destinations at their exact relative probabilities, where a
     * shift/modulo skip would bias the neighbour of `exclude`.
     */
    NodeId pick(Rng &rng, NodeId exclude) const;

  private:
    std::vector<NodeId> mcs_;
    double hotspot_fraction_;
};

/**
 * Measurement-window accounting shared by the open-loop sinks: flits
 * and packets of measurement-tagged packets that completed delivery.
 * Throughput derived from these counters covers exactly the packets
 * whose latency is sampled (tag bit 0), so latency and accepted-load
 * statistics describe the same population — packets generated during
 * warmup contribute to neither.
 */
struct OpenLoopMeasure
{
    std::uint64_t taggedFlitsDelivered = 0;
    std::uint64_t taggedPacketsDelivered = 0;
};

/**
 * Bernoulli packet source with an unbounded source queue (the queue
 * lets offered load exceed accepted throughput so saturation is
 * observable).
 */
class OpenLoopSource
{
  public:
    OpenLoopSource(NodeId node, double rate, unsigned request_flits,
                   const DestinationChooser &dests, Network &net,
                   Rng &rng);

    /** Generates and injects; call once per interconnect cycle. */
    void cycle(Cycle now, bool measuring);

    std::size_t queueDepth() const { return queue_.size(); }
    std::uint64_t generated() const { return generated_; }

  private:
    NodeId node_;
    double rate_;
    unsigned request_flits_;
    const DestinationChooser &dests_;
    Network &net_;
    Rng &rng_;
    std::deque<PacketPtr> queue_;
    std::uint64_t generated_ = 0;
};

/**
 * MC-side sink: accepts requests and echoes a reply of
 * `reply_flits` flits to the requester.
 */
class McEchoSink : public PacketSink
{
  public:
    McEchoSink(NodeId node, unsigned reply_flits, Network &net,
               Accumulator &req_latency,
               OpenLoopMeasure *measure = nullptr);

    bool tryReserve(const Packet &pkt) override;
    void deliver(PacketPtr pkt, Cycle now) override;

    /** Injects pending replies; call once per interconnect cycle. */
    void cycle(Cycle now);

    bool idle() const { return replies_.empty(); }

  private:
    NodeId node_;
    unsigned reply_flits_;
    Network &net_;
    Accumulator &req_latency_;
    OpenLoopMeasure *measure_;
    std::deque<PacketPtr> replies_;
};

/** Core-side sink: collects replies and samples their latency. */
class CollectorSink : public PacketSink
{
  public:
    explicit CollectorSink(Accumulator &latency,
                           OpenLoopMeasure *measure = nullptr)
        : latency_(latency), measure_(measure)
    {}

    bool tryReserve(const Packet &pkt) override
    {
        (void)pkt;
        return true;
    }

    void
    deliver(PacketPtr pkt, Cycle now) override
    {
        // tag bit 0 marks packets generated in the measurement window
        if (pkt->tag & 1) {
            latency_.sample(static_cast<double>(now - pkt->createdCycle));
            if (measure_) {
                measure_->taggedFlitsDelivered += pkt->sizeFlits;
                ++measure_->taggedPacketsDelivered;
            }
        }
    }

  private:
    Accumulator &latency_;
    OpenLoopMeasure *measure_;
};

/**
 * Deterministic nonzero collective id for the `seq`-th collective
 * rooted at `root`.  Roots get disjoint id spaces, so concurrent
 * collectives from different roots never alias at a merge sink.
 */
inline std::uint64_t
collectiveIdFor(NodeId root, std::uint64_t seq)
{
    return ((static_cast<std::uint64_t>(root) + 1) << 40) | (seq + 1);
}

/**
 * Collective issuer: a Bernoulli process whose draws are multicasts —
 * each issue forks one copy of the payload to every node in `dsts`
 * via Network::injectMulticast (source-side forking; the NoC carries
 * ordinary unicasts).  Draws that cannot inject atomically queue and
 * retry, so offered collective load can exceed acceptance.
 */
class CollectiveSource
{
  public:
    /**
     * @param node  root (source) node
     * @param rate  collectives per cycle in [0,1]
     * @param flits fork payload length in flits
     * @param dsts  multicast membership (each fork's destination)
     */
    CollectiveSource(NodeId node, double rate, unsigned flits,
                     std::vector<NodeId> dsts, Network &net, Rng &rng);

    /** Draws and issues collectives; call once per interconnect cycle. */
    void cycle(Cycle now, bool measuring);

    std::uint64_t issued() const { return issued_; }
    std::size_t queueDepth() const { return queue_.size(); }

  private:
    struct Pending
    {
        Cycle created;
        bool measuring;
    };

    NodeId node_;
    double rate_;
    unsigned flits_;
    std::vector<NodeId> dsts_;
    Network &net_;
    Rng &rng_;
    std::deque<Pending> queue_;
    std::uint64_t next_seq_ = 0;
    std::uint64_t issued_ = 0;
};

/**
 * Leaf-side collective sink: answers each received fork with a 1-deep
 * queued contribution back to the fork's root, carrying the same
 * collectiveId and the *original* creation cycle — so the root's merge
 * sink measures full broadcast -> reduce round latency.
 */
class CollectiveEchoSink : public PacketSink
{
  public:
    CollectiveEchoSink(NodeId node, unsigned reply_flits, Network &net);

    bool tryReserve(const Packet &pkt) override;
    void deliver(PacketPtr pkt, Cycle now) override;

    /** Injects pending contributions; call once per cycle. */
    void cycle(Cycle now);

    bool idle() const { return contributions_.empty(); }

  private:
    NodeId node_;
    unsigned reply_flits_;
    Network &net_;
    std::deque<PacketPtr> contributions_;
};

/**
 * Root-side reduction merge: counts per-collectiveId arrivals and
 * declares the collective complete when all `fanout` contributions
 * landed, sampling completion latency (last arrival relative to the
 * collective's creation cycle) for measurement-tagged rounds.
 */
class ReductionSink : public PacketSink
{
  public:
    /**
     * @param fanout contributions per collective (the multicast
     *        membership size at the issuing root)
     */
    ReductionSink(unsigned fanout, Accumulator &latency,
                  OpenLoopMeasure *measure = nullptr);

    bool tryReserve(const Packet &pkt) override;
    void deliver(PacketPtr pkt, Cycle now) override;

    /** Collectives fully merged so far. */
    std::uint64_t merged() const { return merged_; }

    /** Collectives with some but not all contributions arrived. */
    std::size_t partial() const { return partial_.size(); }

  private:
    unsigned fanout_;
    Accumulator &latency_;
    OpenLoopMeasure *measure_;
    std::unordered_map<std::uint64_t, unsigned> partial_;
    std::uint64_t merged_ = 0;
};

} // namespace tenoc

#endif // TENOC_NOC_TRAFFIC_HH
