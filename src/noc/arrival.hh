/**
 * @file
 * Arrival scheduling for channel delivery.
 *
 * Every Channel::send already knows the exact delivery cycle
 * (now + latency), so instead of having each receiver poll
 * Channel::receive(now) on every port every cycle, the sender posts a
 * wake into a per-network ArrivalScheduler: a timing wheel of
 * `arrival mod W` buckets plus one pending-port bitmask word per
 * receiver.  At the start of cycle `now` the network fires bucket
 * `now mod W`, which ORs each matured entry's port bit into its
 * receiver's pending word and marks the receiver in the active set.
 * Router::readInputs then drains exactly the ports whose front entry
 * has matured, and idle-skip retirement can put a router to sleep
 * while items are still in flight toward it — the wheel wakes it on
 * the arrival cycle (see docs/performance.md, "Sleep-until-arrival").
 *
 * Bit-exactness: deferring the active-set mark from send time to
 * arrival time cannot change results because every cycle a component
 * would have been ticked in between is a no-op — receive(now) returns
 * nothing before the arrival cycle, so all pipeline stages early-out
 * — and ticking an idle component never mutates state (the idle-skip
 * argument).  Pending words are pure schedule metadata: they select
 * which ports are scanned, and a port without a matured front entry
 * delivers nothing when scanned, so scanning fewer ports is invisible.
 *
 * Parallel phase execution reuses the ActiveSet deferral pattern:
 * while a phase runs data-parallel across shards the buckets are
 * frozen and schedule() appends to a per-worker buffer instead;
 * mergeDeferred() inserts the buffered entries at the phase barrier.
 * Entries always mature at arrival >= send cycle + 1, so merging at
 * the end of the send cycle is early enough, and bucket order cannot
 * matter because firing is an idempotent OR + mark per entry.
 */

#ifndef TENOC_NOC_ARRIVAL_HH
#define TENOC_NOC_ARRIVAL_HH

#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/parallel.hh"
#include "common/types.hh"
#include "noc/activity.hh"

namespace tenoc
{

/** Per-network timing wheel + per-receiver pending-port words. */
class ArrivalScheduler
{
  public:
    /**
     * Sizes the wheel for `receivers` components and channel latencies
     * up to `max_latency`, waking receivers through `wake`.  Resets
     * all pending words and scheduled entries.
     */
    void
    configure(unsigned receivers, Cycle max_latency, ActiveSet *wake)
    {
        tenoc_assert(wake != nullptr, "arrival scheduler needs a wake set");
        wake_ = wake;
        pending_.assign(receivers, 0);
        // Power-of-two bucket count > max schedule distance, so two
        // live entries can never alias one bucket at different cycles
        // unless the incremental fire loop visits it anyway.
        std::size_t w = 4;
        while (w < max_latency + 2)
            w <<= 1;
        buckets_.clear();
        buckets_.resize(w);
        mask_ = w - 1;
        population_ = 0;
        primed_ = false;
        last_fire_ = 0;
    }

    /** @return true once configure() has run. */
    bool configured() const { return wake_ != nullptr; }

    /**
     * Posts a wake: at cycle `arrival`, OR `bit` into receiver `idx`'s
     * pending word and mark it active.  Buffered per-worker while a
     * parallel phase has the buckets frozen.
     */
    void
    schedule(Cycle arrival, unsigned idx, std::uint32_t bit)
    {
        if (deferring_) {
            deferred_[parallel::workerSlot()].buf.push_back(
                Entry{arrival, idx, bit});
            return;
        }
        insert(Entry{arrival, idx, bit});
    }

    /**
     * Immediate wake (stall-clear path): the receiver has a matured
     * backlog right now, so set the pending bit and mark it live.
     * Caller thread only, outside frozen phases.
     */
    void
    wakeNow(unsigned idx, std::uint32_t bit)
    {
        pending_[idx] |= bit;
        wake_->mark(idx);
    }

    /**
     * Fires every entry that matures by cycle `now`: sets its pending
     * bit and marks its receiver.  Call once at the start of each
     * network cycle, before the active masks are frozen or iterated.
     * Handles drivers that skip cycles (every bucket in the gap is
     * visited; a gap spanning the whole wheel degrades to one full
     * sweep) and a fresh post-restore wheel (full sweep on first
     * fire).
     */
    void
    fire(Cycle now)
    {
        if (primed_ && now <= last_fire_)
            return;
        const bool sweep_all =
            !primed_ || (now - last_fire_ >= buckets_.size());
        const Cycle start = last_fire_ + 1;
        primed_ = true;
        last_fire_ = now;
        if (population_ == 0)
            return;
        if (sweep_all) {
            for (auto &b : buckets_)
                fireBucket(b, now);
        } else {
            for (Cycle c = start; c <= now; ++c)
                fireBucket(buckets_[c & mask_], now);
        }
    }

    /** Pending-port word of receiver `idx` (bit set = a matured,
     *  not-yet-drained arrival on that port). */
    std::uint32_t pending(unsigned idx) const { return pending_[idx]; }

    /** Overwrites receiver `idx`'s pending word (drain bookkeeping). */
    void
    setPending(unsigned idx, std::uint32_t word)
    {
        pending_[idx] = word;
    }

    /** Total entries waiting in the wheel (tests / diagnostics). */
    std::size_t scheduled() const { return population_; }

    /** Latest cycle whose arrivals fire() has delivered; 0 before the
     *  first fire (no arrival can mature at cycle 0 — every send posts
     *  at >= send cycle + 1).  The invariant checker clamps its deep
     *  matured-arrival scan to this horizon so an audit taken between
     *  cycles does not flag arrivals the wheel has not yet been asked
     *  to deliver. */
    Cycle firedThrough() const { return primed_ ? last_fire_ : 0; }

    // --- deferred scheduling (parallel phase execution) ---

    /** Allocates per-worker entry buffers; idempotent. */
    void
    enableDeferred()
    {
        if (deferred_.empty())
            deferred_.resize(parallel::maxSlots());
    }

    /** Freezes the buckets: schedule() buffers until the next merge. */
    void beginDeferred() { deferring_ = true; }

    /** Leaves deferred mode (buckets directly writable again). */
    void endDeferred() { deferring_ = false; }

    /** Inserts every buffered entry.  Call only at a phase barrier
     *  (single-threaded); all buffered arrivals are in the future, so
     *  merging after the phase is early enough, and insertion order
     *  cannot matter (firing is an idempotent OR + mark). */
    void
    mergeDeferred()
    {
        for (auto &slot : deferred_) {
            for (const Entry &e : slot.buf)
                insert(e);
            slot.buf.clear();
        }
    }

  private:
    struct Entry
    {
        Cycle arrival;
        std::uint32_t idx;
        std::uint32_t bit;
    };

    /** Per-worker entry buffer, padded like ActiveSet::DeferredSlot. */
    struct alignas(parallel::CACHE_LINE) DeferredSlot
    {
        std::vector<Entry> buf;
    };

    void
    insert(const Entry &e)
    {
        buckets_[e.arrival & mask_].push_back(e);
        ++population_;
    }

    /** Fires matured entries of one bucket, keeping future ones (an
     *  aliased entry one wheel turn out stays for its own cycle). */
    void
    fireBucket(std::vector<Entry> &b, Cycle now)
    {
        std::size_t keep = 0;
        for (std::size_t i = 0; i < b.size(); ++i) {
            const Entry &e = b[i];
            if (e.arrival <= now) {
                pending_[e.idx] |= e.bit;
                wake_->mark(e.idx);
                --population_;
            } else {
                b[keep++] = b[i];
            }
        }
        b.resize(keep);
    }

    std::vector<std::uint32_t> pending_;
    std::vector<std::vector<Entry>> buckets_;
    std::size_t mask_ = 0;
    std::size_t population_ = 0;
    bool primed_ = false;
    Cycle last_fire_ = 0;
    ActiveSet *wake_ = nullptr;
    bool deferring_ = false;
    std::vector<DeferredSlot> deferred_;
};

} // namespace tenoc

#endif // TENOC_NOC_ARRIVAL_HH
