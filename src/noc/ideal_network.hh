/**
 * @file
 * Idealized networks for the paper's limit studies.
 *
 *  - PERFECT (Sec. III-B, Fig. 7): zero latency, infinite bandwidth.
 *  - BW_LIMITED (Sec. III-A, Fig. 6): zero latency once a flit is
 *    accepted, but a global cap on flits accepted per interconnect
 *    cycle.  Multiple sources may transmit to one destination in a
 *    cycle and a source may send multiple flits per cycle.
 *
 * Both honor destination-side backpressure via PacketSink so closed-
 * loop structures (MC request queues) stay meaningful.
 */

#ifndef TENOC_NOC_IDEAL_NETWORK_HH
#define TENOC_NOC_IDEAL_NETWORK_HH

#include <deque>
#include <memory>
#include <vector>

#include "noc/network.hh"

namespace tenoc
{

/** Configuration for an ideal network. */
struct IdealNetworkParams
{
    TopologyParams topo;
    unsigned flitBytes = 16;        ///< for packet sizing only
    bool bandwidthLimited = false;  ///< false = perfect network
    /** Aggregate accepted flits per interconnect cycle (may be
     *  fractional; a token bucket accumulates budget each cycle). */
    double flitsPerCycle = 0.0;
};

class IdealNetwork : public Network
{
  public:
    explicit IdealNetwork(const IdealNetworkParams &params);

    const Topology &topology() const override { return topo_; }
    unsigned flitBytes() const override { return params_.flitBytes; }
    bool canInject(NodeId n, int proto_class) const override;
    unsigned injectSpace(NodeId n, int proto_class) const override;
    void inject(PacketPtr pkt, Cycle now) override;
    void setSink(NodeId n, PacketSink *sink) override;
    void cycle(Cycle now) override;
    bool drained() const override;
    NetStats &stats() override { return stats_; }

  private:
    IdealNetworkParams params_;
    Topology topo_;
    NetStats stats_;

    /** Packets accepted by the network, pending sink delivery. */
    std::vector<std::deque<PacketPtr>> pending_; ///< per destination
    /** Packets not yet accepted (BW limit). */
    std::deque<PacketPtr> waiting_;
    double tokens_ = 0.0;
    std::uint64_t next_pkt_id_ = 1;
    std::vector<PacketSink *> sinks_;
};

} // namespace tenoc

#endif // TENOC_NOC_IDEAL_NETWORK_HH
