/**
 * @file
 * Per-input-port virtual channel buffers and VC bookkeeping.
 *
 * Since the structure-of-arrays refactor an InputPort is a *view*: the
 * actual VC state machines and flit storage live in a VcSlabs arena
 * (normally the owning network's; standalone ports for unit tests carry
 * a private one).  The public API is unchanged, so router pipeline
 * code, the invariant checker, golden shadow models and telemetry
 * samplers are oblivious to where the bytes live.
 */

#ifndef TENOC_NOC_BUFFER_HH
#define TENOC_NOC_BUFFER_HH

#include <memory>

#include "common/log.hh"
#include "noc/flit.hh"
#include "noc/slab.hh"

namespace tenoc
{

/**
 * The buffers and per-VC state of one router input port.
 */
class InputPort
{
  public:
    /**
     * Standalone port owning its own storage (unit tests, ad-hoc use).
     *
     * @param vcs number of virtual channels
     * @param depth flit slots per VC
     */
    InputPort(unsigned vcs, unsigned depth);

    /**
     * View of `vcs` consecutive input VCs starting at global index
     * `base` inside `slab` (which must already be configured with ring
     * depth `depth` and at least `base + vcs` input VCs).
     */
    InputPort(VcSlabs &slab, std::size_t base, unsigned vcs,
              unsigned depth);

    InputPort(InputPort &&) = default;
    InputPort &operator=(InputPort &&) = default;

    unsigned numVcs() const { return nvcs_; }
    unsigned depth() const { return depth_; }

    /** Buffers an arriving flit on its VC; panics on overflow. */
    void push(Flit &&flit, Cycle now);

    /** @return flits currently buffered on `vc`. */
    std::size_t
    occupancy(unsigned vc) const
    {
        return slab_->ringCount[base_ + vc];
    }

    /** @return free slots on `vc`. */
    unsigned
    freeSlots(unsigned vc) const
    {
        return depth_ - slab_->ringCount[base_ + vc];
    }

    bool empty(unsigned vc) const { return occupancy(vc) == 0; }

    /** @return the flit at the head of `vc` (must be non-empty). */
    const Flit &front(unsigned vc) const
    {
        return slab_->frontFlit(base_ + vc);
    }

    /** Removes and returns the head flit of `vc`. */
    Flit pop(unsigned vc);

    /** Per-VC pipeline state. */
    VcState state(unsigned vc) const { return slab_->inState[base_ + vc]; }
    void setState(unsigned vc, VcState s) { slab_->inState[base_ + vc] = s; }

    /** Output port assigned by route computation. */
    unsigned outPort(unsigned vc) const
    {
        return slab_->inOutPort[base_ + vc];
    }
    void setOutPort(unsigned vc, unsigned p)
    {
        slab_->inOutPort[base_ + vc] = p;
    }

    /** Output VC granted by VC allocation. */
    unsigned outVc(unsigned vc) const { return slab_->inOutVc[base_ + vc]; }
    void setOutVc(unsigned vc, unsigned v)
    {
        slab_->inOutVc[base_ + vc] = v;
    }

    /** Head packet's first eligible output VC, cached by RC (derived
     *  state; only meaningful while the VC is in VC_ALLOC/ACTIVE). */
    unsigned baseVc(unsigned vc) const
    {
        return slab_->inBaseVc[base_ + vc];
    }
    void setBaseVc(unsigned vc, unsigned b)
    {
        slab_->inBaseVc[base_ + vc] = b;
    }

    /** Total flits buffered across all VCs (O(1), kept by push/pop). */
    std::size_t totalOccupancy() const { return total_; }

    /** Calls f(vc, flit) for every buffered flit, head first per VC. */
    template <typename F>
    void
    forEachFlit(F &&f) const
    {
        for (unsigned vc = 0; vc < nvcs_; ++vc)
            slab_->forEachRingFlit(
                base_ + vc, [&](const Flit &flit) { f(vc, flit); });
    }

    /** Serializes buffered flits and per-VC pipeline state. */
    void save(SnapshotWriter &w) const;

    /** Restores state written by save() into this (empty) port. */
    void restore(SnapshotReader &r);

  private:
    // When standalone, the port's private arena; null for views.
    // Declared before slab_ so the view pointer can target it.
    std::unique_ptr<VcSlabs> owned_;
    VcSlabs *slab_;
    std::size_t base_;
    unsigned nvcs_;
    unsigned depth_;
    std::size_t total_ = 0;
};

} // namespace tenoc

#endif // TENOC_NOC_BUFFER_HH
