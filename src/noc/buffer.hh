/**
 * @file
 * Per-input-port virtual channel buffers and VC bookkeeping.
 */

#ifndef TENOC_NOC_BUFFER_HH
#define TENOC_NOC_BUFFER_HH

#include <deque>
#include <vector>

#include "common/log.hh"
#include "noc/flit.hh"

namespace tenoc
{

/** Pipeline state of one input virtual channel. */
enum class VcState : std::uint8_t
{
    IDLE,     ///< no packet being routed through this VC
    ROUTING,  ///< head flit buffered, awaiting route computation
    VC_ALLOC, ///< route known, awaiting an output VC
    ACTIVE    ///< output VC held; flits may traverse the switch
};

/**
 * The buffers and per-VC state of one router input port.
 */
class InputPort
{
  public:
    /**
     * @param vcs number of virtual channels
     * @param depth flit slots per VC
     */
    InputPort(unsigned vcs, unsigned depth);

    unsigned numVcs() const { return static_cast<unsigned>(vcs_.size()); }
    unsigned depth() const { return depth_; }

    /** Buffers an arriving flit on its VC; panics on overflow. */
    void push(Flit &&flit, Cycle now);

    /** @return flits currently buffered on `vc`. */
    std::size_t occupancy(unsigned vc) const { return vcs_[vc].fifo.size(); }

    /** @return free slots on `vc`. */
    unsigned freeSlots(unsigned vc) const;

    bool empty(unsigned vc) const { return vcs_[vc].fifo.empty(); }

    /** @return the flit at the head of `vc` (must be non-empty). */
    const Flit &front(unsigned vc) const;

    /** Removes and returns the head flit of `vc`. */
    Flit pop(unsigned vc);

    /** Per-VC pipeline state. */
    VcState state(unsigned vc) const { return vcs_[vc].state; }
    void setState(unsigned vc, VcState s) { vcs_[vc].state = s; }

    /** Output port assigned by route computation. */
    unsigned outPort(unsigned vc) const { return vcs_[vc].outPort; }
    void setOutPort(unsigned vc, unsigned p) { vcs_[vc].outPort = p; }

    /** Output VC granted by VC allocation. */
    unsigned outVc(unsigned vc) const { return vcs_[vc].outVc; }
    void setOutVc(unsigned vc, unsigned v) { vcs_[vc].outVc = v; }

    /** Total flits buffered across all VCs (O(1), kept by push/pop). */
    std::size_t totalOccupancy() const { return total_; }

    /** Calls f(vc, flit) for every buffered flit, head first per VC. */
    template <typename F>
    void
    forEachFlit(F &&f) const
    {
        for (unsigned vc = 0; vc < vcs_.size(); ++vc)
            for (const Flit &flit : vcs_[vc].fifo)
                f(vc, flit);
    }

    /** Serializes buffered flits and per-VC pipeline state. */
    void save(SnapshotWriter &w) const;

    /** Restores state written by save() into this (empty) port. */
    void restore(SnapshotReader &r);

  private:
    struct VcEntry
    {
        std::deque<Flit> fifo;
        VcState state = VcState::IDLE;
        unsigned outPort = 0;
        unsigned outVc = 0;
    };

    unsigned depth_;
    std::vector<VcEntry> vcs_;
    std::size_t total_ = 0;
};

} // namespace tenoc

#endif // TENOC_NOC_BUFFER_HH
