/**
 * @file
 * MeshNetwork / DoubleNetwork implementation.
 */

#include "noc/mesh_network.hh"

#include "telemetry/telemetry.hh"

namespace tenoc
{

double
NetStats::acceptedBytesPerCyclePerNode() const
{
    if (cycles == 0 || nodeEjectedBytes.empty())
        return 0.0;
    std::uint64_t total = 0;
    for (auto b : nodeEjectedBytes)
        total += b;
    return static_cast<double>(total) /
        (static_cast<double>(cycles) * nodeEjectedBytes.size());
}

double
NetStats::injectionRate(const std::vector<NodeId> &nodes) const
{
    if (cycles == 0 || nodes.empty())
        return 0.0;
    std::uint64_t total = 0;
    for (NodeId n : nodes)
        total += nodeInjectedFlits[n];
    return static_cast<double>(total) /
        (static_cast<double>(cycles) * nodes.size());
}

void
NetStats::registerStats(StatGroup &group)
{
    // Scalars are plain struct fields (some are adjusted in place,
    // e.g. the double network's cycle correction), so export them
    // lazily rather than mirroring them into Counter objects.
    group.addValue("cycles",
                   [this] { return static_cast<double>(cycles); });
    group.addValue("packets_injected", [this] {
        return static_cast<double>(packetsInjected);
    });
    group.addValue("packets_ejected", [this] {
        return static_cast<double>(packetsEjected);
    });
    group.addValue("flits_injected", [this] {
        return static_cast<double>(flitsInjected);
    });
    group.addValue("flits_ejected", [this] {
        return static_cast<double>(flitsEjected);
    });
    group.addValue("accepted_bytes_per_cycle_per_node",
                   [this] { return acceptedBytesPerCyclePerNode(); });
    group.add(&totalLatency);
    group.add(&netLatency);
    group.add(&totalLatencyHist);
    group.add(&queueLatencyHist);
    group.add(&traversalLatencyHist);
    group.add(&serializationLatencyHist);
}

MeshNetwork::MeshNetwork(const MeshNetworkParams &params,
                         NetStats *shared_stats)
    : params_(params), topo_(params.topo),
      routing_(makeRouting(params.routing, topo_)),
      rng_(params.seed)
{
    vc_map_.protoClasses = params_.protoClasses;
    vc_map_.routeClasses = routing_->numRouteClasses();
    vc_map_.vcsPerClass = params_.vcsPerClass;

    if (shared_stats) {
        stats_ = shared_stats;
    } else {
        owned_stats_ = std::make_unique<NetStats>(topo_.numNodes());
        stats_ = owned_stats_.get();
    }

    router_active_.resize(topo_.numNodes());
    ni_active_.resize(topo_.numNodes());

    // Routers.
    routers_.reserve(topo_.numNodes());
    for (NodeId n = 0; n < topo_.numNodes(); ++n) {
        Router::Params rp;
        rp.vcMap = vc_map_;
        rp.vcDepth = params_.vcDepth;
        rp.agePriority = params_.agePriority;
        rp.half = topo_.isHalfRouter(n);
        rp.pipelineDepth =
            rp.half ? params_.halfPipelineDepth : params_.pipelineDepth;
        if (topo_.isMc(n)) {
            rp.numInjPorts = params_.mcInjPorts;
            rp.numEjPorts = params_.mcEjPorts;
        }
        routers_.push_back(
            std::make_unique<Router>(n, topo_, *routing_, rp));
        routers_[n]->setActivity(&router_active_, n);
        routers_[n]->setTraversalCounter(&flits_traversed_total_);
    }

    // Channels between adjacent routers (one flit + one credit channel
    // per direction per edge).
    for (NodeId n = 0; n < topo_.numNodes(); ++n) {
        for (unsigned d = 0; d < NUM_DIRS; ++d) {
            const auto dir = static_cast<Direction>(d);
            const NodeId nb = topo_.neighbor(n, dir);
            if (nb == INVALID_NODE)
                continue;
            auto fc =
                std::make_unique<Channel<Flit>>(params_.channelLatency);
            auto cc = std::make_unique<Channel<Credit>>(
                params_.channelLatency);
            routers_[n]->connectOutput(dir, fc.get(), cc.get());
            routers_[nb]->connectInput(opposite(dir), fc.get(),
                                       cc.get());
            // A send wakes whichever router will eventually receive:
            // flits travel n -> nb, credits return nb -> n.
            fc->setWakeTarget(&router_active_, nb);
            cc->setWakeTarget(&router_active_, n);
            flit_channels_.push_back(std::move(fc));
            credit_channels_.push_back(std::move(cc));
        }
    }

    // Network interfaces.
    nis_.reserve(topo_.numNodes());
    for (NodeId n = 0; n < topo_.numNodes(); ++n) {
        nis_.push_back(std::make_unique<NetworkInterface>(
            n, *routers_[n], vc_map_, params_.ni, *stats_));
        routers_[n]->setEjectionSink(nis_[n].get());
        nis_[n]->setActivity(&ni_active_, n);
        nis_[n]->setInFlightCounter(&inflight_);
    }
}

bool
MeshNetwork::canInject(NodeId n, int proto_class) const
{
    return nis_[n]->canInject(proto_class);
}

unsigned
MeshNetwork::injectSpace(NodeId n, int proto_class) const
{
    return nis_[n]->injectSpace(proto_class);
}

void
MeshNetwork::inject(PacketPtr pkt, Cycle now)
{
    tenoc_assert(pkt->src < topo_.numNodes() &&
                 pkt->dst < topo_.numNodes(), "invalid endpoints");
    pkt->id = next_pkt_id_++;
    routing_->initPacket(*pkt, rng_);
    nis_[pkt->src]->enqueue(std::move(pkt), now);
}

void
MeshNetwork::setSink(NodeId n, PacketSink *sink)
{
    nis_[n]->setSink(sink);
}

void
MeshNetwork::cycle(Cycle now)
{
    ++stats_->cycles;
    if (!params_.idleSkip) {
        // Reference scheduler: tick everything every cycle.
        for (auto &r : routers_)
            r->readInputs(now);
        for (auto &ni : nis_)
            ni->injectPhase(now);
        for (auto &r : routers_)
            r->compute(now);
        for (auto &ni : nis_)
            ni->drainPhase(now);
        return;
    }
    // Idle-skip: tick only components that can make progress.  An idle
    // component performs no state change when ticked (arbiters only
    // advance on accept()), so skipping it is bit-exact; iteration is
    // ascending-index, matching the reference sweep order.  Marks made
    // by one phase (NI injectFlit -> router, router ejectFlit -> NI)
    // are observed by the later phases of the same cycle because each
    // forEach reads the live mask.
    router_active_.forEach(
        [&](unsigned n) { routers_[n]->readInputs(now); });
    ni_active_.forEach([&](unsigned n) { nis_[n]->injectPhase(now); });
    router_active_.forEach([&](unsigned n) {
        if (routers_[n]->bufferedFlits())
            routers_[n]->compute(now);
    });
    ni_active_.forEach([&](unsigned n) { nis_[n]->drainPhase(now); });
    // Retire components that ran dry: a retired router/NI is re-marked
    // by the event that next gives it work (channel send, injection,
    // ejection), never silently forgotten.
    router_active_.retireIf(
        [&](unsigned n) { return !routers_[n]->couldWork(); });
    ni_active_.retireIf([&](unsigned n) { return nis_[n]->idle(); });
}

void
MeshNetwork::attachTelemetry(telemetry::TelemetryHub &hub)
{
    attachTelemetryPrefixed(hub, "");
}

void
MeshNetwork::attachTelemetryPrefixed(telemetry::TelemetryHub &hub,
                                     const std::string &prefix)
{
    if (auto *sampler = hub.sampler()) {
        const std::size_t nodes = routers_.size();
        sampler->addGaugeVector(
            prefix + "router_occ", nodes, [this](std::size_t n) {
                return static_cast<double>(routers_[n]->bufferedFlits());
            });
        sampler->addCounterVector(
            prefix + "link_flits", nodes * NUM_DIRS,
            [this](std::size_t i) {
                return static_cast<double>(
                    routers_[i / NUM_DIRS]->linkFlits(i % NUM_DIRS));
            });
        // Network-level running counter kept by the routers themselves
        // (Router::setTraversalCounter): sampling is O(1) instead of
        // re-summing every router per interval.
        sampler->addCounter(prefix + "flits_traversed", [this] {
            return static_cast<double>(flits_traversed_total_);
        });
    }
    if (auto *tracer = hub.tracer()) {
        for (auto &r : routers_)
            r->setTracer(tracer);
        for (auto &ni : nis_)
            ni->setTracer(tracer);
    }
}

bool
MeshNetwork::drained() const
{
    // Every packet is counted in at NI::enqueue and out when its tail
    // flit leaves the ejection buffer, so one counter covers injection
    // queues, router buffers, flit channels and ejection buffers.
    return inflight_ == 0;
}

DoubleNetwork::DoubleNetwork(const MeshNetworkParams &base)
{
    MeshNetworkParams slice = base;
    slice.flitBytes = base.flitBytes / 2;
    tenoc_assert(slice.flitBytes > 0, "cannot slice 1-byte channels");
    slice.protoClasses = 1; // dedicated networks need no protocol VCs
    // Keep each slice's total buffer *storage* equal to the unsliced
    // network by doubling the lanes per class (flits are half-width).
    // See DESIGN.md: our flit-level wormhole router needs the extra
    // lanes to reach BookSim-like utilization on half-width worms.
    slice.vcsPerClass = base.vcsPerClass * 2;

    stats_ = std::make_unique<NetStats>(
        base.topo.rows * base.topo.cols);

    // MC terminal ports are direction-specific: requests only *eject*
    // at MCs (request slice), replies only *inject* (reply slice), so
    // the multi-port upgrade applies to one slice each (Sec. IV-D).
    MeshNetworkParams req_slice = slice;
    req_slice.mcInjPorts = 1;
    request_ = std::make_unique<MeshNetwork>(req_slice, stats_.get());

    MeshNetworkParams rep_slice = slice;
    rep_slice.mcEjPorts = 1;
    rep_slice.seed = base.seed + 0x9e3779b9ULL;
    reply_ = std::make_unique<MeshNetwork>(rep_slice, stats_.get());
}

unsigned
DoubleNetwork::flitBytes() const
{
    return request_->flitBytes();
}

MeshNetwork &
DoubleNetwork::subnetFor(int proto_class) const
{
    return proto_class == 0 ? *request_ : *reply_;
}

bool
DoubleNetwork::canInject(NodeId n, int proto_class) const
{
    return subnetFor(proto_class).canInject(n, proto_class);
}

unsigned
DoubleNetwork::injectSpace(NodeId n, int proto_class) const
{
    return subnetFor(proto_class).injectSpace(n, proto_class);
}

void
DoubleNetwork::inject(PacketPtr pkt, Cycle now)
{
    subnetFor(pkt->protoClass).inject(std::move(pkt), now);
}

void
DoubleNetwork::setSink(NodeId n, PacketSink *sink)
{
    request_->setSink(n, sink);
    reply_->setSink(n, sink);
}

void
DoubleNetwork::cycle(Cycle now)
{
    ++stats_->cycles;
    // Each slice bumps the shared cycle counter; correct for the
    // double count so `cycles` tracks wall interconnect cycles.
    request_->cycle(now);
    reply_->cycle(now);
    stats_->cycles -= 2;
}

bool
DoubleNetwork::drained() const
{
    return request_->drained() && reply_->drained();
}

void
DoubleNetwork::attachTelemetry(telemetry::TelemetryHub &hub)
{
    request_->attachTelemetryPrefixed(hub, "req_");
    reply_->attachTelemetryPrefixed(hub, "rep_");
}

std::unique_ptr<Network>
makeMeshNetwork(const MeshNetworkParams &params, bool sliced)
{
    if (sliced)
        return std::make_unique<DoubleNetwork>(params);
    return std::make_unique<MeshNetwork>(params);
}

} // namespace tenoc
