/**
 * @file
 * MeshNetwork / DoubleNetwork implementation.
 */

#include "noc/mesh_network.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>

#include "common/parallel.hh"
#include "common/snapshot.hh"
#include "telemetry/json.hh"
#include "telemetry/telemetry.hh"

namespace tenoc
{

namespace
{

/** TENOC_ARRIVAL_SLEEP=0/1 overrides MeshNetworkParams::arrivalSleep
 *  everywhere (the equivalence tests cross both settings); -1 = unset. */
int
arrivalSleepEnvOverride()
{
    const char *env = std::getenv("TENOC_ARRIVAL_SLEEP");
    if (!env || !*env)
        return -1;
    return std::string(env) == "0" ? 0 : 1;
}

/** Monotonic nanosecond stamp for the --profile phase breakdown. */
std::uint64_t
profileNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

void
validateMeshNetworkParams(const MeshNetworkParams &params)
{
    if (params.protoClasses == 0) {
        tenoc_fatal("invalid network config: protoClasses must be >= 1"
                    " (request/reply protocol isolation needs at least"
                    " one class)");
    }
    if (params.vcsPerClass == 0) {
        tenoc_fatal("invalid network config: vcsPerClass must be >= 1 —"
                    " a network with 0 virtual channels cannot carry"
                    " traffic");
    }
    if (params.vcDepth == 0) {
        tenoc_fatal("invalid network config: vcDepth must be >= 1 —"
                    " 0-depth VC buffers can never accept a flit");
    }
    if (params.flitBytes == 0) {
        tenoc_fatal("invalid network config: flitBytes must be >= 1"
                    " (channel width in bytes)");
    }
    if (params.pipelineDepth == 0 || params.halfPipelineDepth == 0) {
        tenoc_fatal("invalid network config: pipelineDepth and"
                    " halfPipelineDepth must be >= 1 (a flit spends at"
                    " least one cycle in a router)");
    }
    if (params.channelLatency == 0) {
        tenoc_fatal("invalid network config: channelLatency must be"
                    " >= 1 cycle");
    }
    if (params.mcInjPorts == 0 || params.mcEjPorts == 0) {
        tenoc_fatal("invalid network config: MC routers need at least"
                    " one injection and one ejection port (got inj=",
                    params.mcInjPorts, " ej=", params.mcEjPorts, ")");
    }
    if (params.ni.injQueueCap == 0 || params.ni.ejBufferFlits == 0) {
        tenoc_fatal("invalid network config: NI queue capacities must"
                    " be >= 1 (injQueueCap=", params.ni.injQueueCap,
                    " ejBufferFlits=", params.ni.ejBufferFlits, ")");
    }
    if (params.validate && params.validateInterval == 0) {
        tenoc_fatal("invalid network config: validateInterval must be"
                    " >= 1 when validate is enabled");
    }
}

double
NetStats::acceptedBytesPerCyclePerNode() const
{
    if (cycles == 0 || nodeEjectedBytes.empty())
        return 0.0;
    std::uint64_t total = 0;
    for (auto b : nodeEjectedBytes)
        total += b;
    return static_cast<double>(total) /
        (static_cast<double>(cycles) * nodeEjectedBytes.size());
}

double
NetStats::injectionRate(const std::vector<NodeId> &nodes) const
{
    if (cycles == 0 || nodes.empty())
        return 0.0;
    std::uint64_t total = 0;
    for (NodeId n : nodes)
        total += nodeInjectedFlits[n];
    return static_cast<double>(total) /
        (static_cast<double>(cycles) * nodes.size());
}

void
NetStats::registerStats(StatGroup &group)
{
    // Scalars are plain struct fields (some are adjusted in place,
    // e.g. the double network's cycle correction), so export them
    // lazily rather than mirroring them into Counter objects.
    group.addValue("cycles",
                   [this] { return static_cast<double>(cycles); });
    group.addValue("packets_injected", [this] {
        return static_cast<double>(packetsInjected);
    });
    group.addValue("packets_ejected", [this] {
        return static_cast<double>(packetsEjected);
    });
    group.addValue("flits_injected", [this] {
        return static_cast<double>(flitsInjected);
    });
    group.addValue("flits_ejected", [this] {
        return static_cast<double>(flitsEjected);
    });
    group.addValue("accepted_bytes_per_cycle_per_node",
                   [this] { return acceptedBytesPerCyclePerNode(); });
    group.add(&totalLatency);
    group.add(&netLatency);
    group.add(&totalLatencyHist);
    group.add(&queueLatencyHist);
    group.add(&traversalLatencyHist);
    group.add(&serializationLatencyHist);
}

MeshNetwork::MeshNetwork(const MeshNetworkParams &params,
                         NetStats *shared_stats, std::uint64_t *shared_ids)
    : params_(params), topo_(params.topo),
      routing_(makeRouting(params.routing, topo_)),
      rng_(params.seed)
{
    if (shared_ids)
        pkt_ids_ = shared_ids;
    validateMeshNetworkParams(params_);
    if (validateForcedByEnv())
        params_.validate = true;
    if (const int arr = arrivalSleepEnvOverride(); arr >= 0)
        params_.arrivalSleep = arr != 0;
    if (params_.validate) {
        // Packets are pooled thread-locally; arm double-release
        // detection on this thread's pool (left on afterwards — purely
        // additional checking, never behavioural).
        packetPool().setValidate(true);
    }

    vc_map_.protoClasses = params_.protoClasses;
    vc_map_.routeClasses = routing_->numRouteClasses();
    vc_map_.vcsPerClass = params_.vcsPerClass;

    checker_ = std::make_unique<InvariantChecker>(params_.vcDepth);
    checker_->setCounters(&inflight_, &net_flits_in_, &net_flits_out_);
    if (params_.faults.any()) {
        faults_ = std::make_unique<FaultEngine>(params_.faults,
                                                topo_.numNodes());
    }

    if (shared_stats) {
        stats_ = shared_stats;
    } else {
        owned_stats_ = std::make_unique<NetStats>(topo_.numNodes());
        stats_ = owned_stats_.get();
    }

    router_active_.resize(topo_.numNodes());
    ni_active_.resize(topo_.numNodes());
    if (params_.arrivalSleep) {
        // All channels share one latency, so the wheel is sized once;
        // configure before the routers so setArrival can hand each its
        // scheduler slot ahead of channel wiring.
        arrival_.configure(topo_.numNodes(), params_.channelLatency,
                           &router_active_);
    }

    // Routers.  Geometry pre-pass first: per-node parameters decide
    // how many input/output VCs each router contributes, the slab
    // arena is sized once, and every router views a contiguous
    // node-ordered range of it (see slab.hh).
    std::vector<Router::Params> node_params;
    node_params.reserve(topo_.numNodes());
    std::size_t in_vcs = 0;
    std::size_t out_vcs = 0;
    const unsigned vcs = vc_map_.numVcs();
    // Concentration multiplies endpoint ports: a router fronts
    // `concentration` terminals, each with its own inj/ej port pair
    // (MC terminals additionally scale by the multi-port MC counts).
    const unsigned conc = topo_.concentration();
    for (NodeId n = 0; n < topo_.numNodes(); ++n) {
        Router::Params rp;
        rp.vcMap = vc_map_;
        rp.vcDepth = params_.vcDepth;
        rp.agePriority = params_.agePriority;
        rp.half = topo_.isHalfRouter(n);
        rp.pipelineDepth =
            rp.half ? params_.halfPipelineDepth : params_.pipelineDepth;
        if (topo_.isMc(n)) {
            rp.numInjPorts = conc * params_.mcInjPorts;
            rp.numEjPorts = conc * params_.mcEjPorts;
        } else {
            rp.numInjPorts = conc;
            rp.numEjPorts = conc;
        }
        in_vcs += (NUM_DIRS + rp.numInjPorts) * vcs;
        out_vcs += (NUM_DIRS + rp.numEjPorts) * vcs;
        node_params.push_back(std::move(rp));
    }
    slabs_.configure(in_vcs, out_vcs, params_.vcDepth);
    slabs_.setValidate(params_.validate);

    routers_.reserve(topo_.numNodes());
    std::size_t in_base = 0;
    std::size_t out_base = 0;
    for (NodeId n = 0; n < topo_.numNodes(); ++n) {
        const Router::Params &rp = node_params[n];
        routers_.push_back(std::make_unique<Router>(
            n, topo_, *routing_, rp, slabs_, in_base, out_base));
        in_base += (NUM_DIRS + rp.numInjPorts) * vcs;
        out_base += (NUM_DIRS + rp.numEjPorts) * vcs;
        routers_[n]->setActivity(&router_active_, n);
        if (params_.arrivalSleep)
            routers_[n]->setArrival(&arrival_, n);
        routers_[n]->setTraversalCounter(&flits_traversed_total_);
        checker_->addRouter(routers_[n].get());
        if (faults_)
            faults_->registerRouter(n, routers_[n].get());
    }

    // Channels between adjacent routers (one flit + one credit channel
    // per direction per edge), by value in node-then-direction wiring
    // order — the order MeshNetwork::cycle streams them.
    for (NodeId n = 0; n < topo_.numNodes(); ++n) {
        for (unsigned d = 0; d < NUM_DIRS; ++d) {
            const auto dir = static_cast<Direction>(d);
            const NodeId nb = topo_.neighbor(n, dir);
            if (nb == INVALID_NODE)
                continue;
            Channel<Flit> &fc =
                flit_channels_.emplace_back(params_.channelLatency);
            Channel<Credit> &cc =
                credit_channels_.emplace_back(params_.channelLatency);
            routers_[n]->connectOutput(dir, &fc, &cc);
            routers_[nb]->connectInput(opposite(dir), &fc, &cc);
            // A send wakes whichever router will eventually receive:
            // flits travel n -> nb, credits return nb -> n.
            fc.setWakeTarget(&router_active_, nb);
            cc.setWakeTarget(&router_active_, n);
            checker_->addLink(routers_[n].get(), d, &fc, &cc,
                              routers_[nb].get(),
                              static_cast<unsigned>(opposite(dir)));
            if (faults_)
                faults_->registerLink(n, d, &fc);
        }
    }

    // Network interfaces, viewing one shared SoA arena (class queues,
    // active-packet slots, ejection rings; see NiSlabs) sized from the
    // same geometry pre-pass as the router slabs.
    std::vector<unsigned> inj_ports(topo_.numNodes());
    std::vector<unsigned> ej_ports(topo_.numNodes());
    for (NodeId n = 0; n < topo_.numNodes(); ++n) {
        inj_ports[n] = node_params[n].numInjPorts;
        ej_ports[n] = node_params[n].numEjPorts;
    }
    ni_slabs_.configure(inj_ports, vcs, params_.protoClasses,
                        params_.ni.injQueueCap, ej_ports,
                        params_.ni.ejBufferFlits);
    nis_.reserve(topo_.numNodes());
    for (NodeId n = 0; n < topo_.numNodes(); ++n) {
        nis_.push_back(std::make_unique<NetworkInterface>(
            n, *routers_[n], vc_map_, params_.ni, *stats_,
            &ni_slabs_, n));
        routers_[n]->setEjectionSink(nis_[n].get());
        nis_[n]->setActivity(&ni_active_, n);
        nis_[n]->setInFlightCounter(&inflight_);
        nis_[n]->setNetFlitCounters(&net_flits_in_, &net_flits_out_);
        checker_->addNi(nis_[n].get());
    }
    if (params_.idleSkip)
        checker_->setActivity(&router_active_, &ni_active_);

    // Intra-cycle parallel engine (see docs/performance.md).  Routers
    // are sharded into contiguous ascending-index ranges; each shard
    // accumulates switch traversals privately and activity marks land
    // in per-worker buffers merged at phase barriers; NIs buffer every
    // shared-stat side effect in per-NI deltas applied in index order.
    cycle_threads_ = std::min(
        parallel::resolveCycleThreads(params_.cycleThreads),
        topo_.numNodes());
    if (cycle_threads_ > 1) {
        router_active_.enableDeferredMarks();
        ni_active_.enableDeferredMarks();
        shard_traversed_.assign(cycle_threads_, parallel::PaddedU64{});
        for (unsigned s = 0; s < cycle_threads_; ++s) {
            const auto [lo, hi] = parallel::shardRange(
                s, topo_.numNodes(), cycle_threads_);
            for (NodeId n = lo; n < hi; ++n) {
                routers_[n]->setTraversalCounter(
                    &shard_traversed_[s].value);
            }
        }
        for (auto &ni : nis_)
            ni->setDeferredStats(true);
        if (arrival_.configured())
            arrival_.enableDeferred();
    }
}

bool
MeshNetwork::canInject(NodeId n, int proto_class) const
{
    return nis_[n]->canInject(proto_class);
}

unsigned
MeshNetwork::injectSpace(NodeId n, int proto_class) const
{
    return nis_[n]->injectSpace(proto_class);
}

void
MeshNetwork::inject(PacketPtr pkt, Cycle now)
{
    tenoc_assert(pkt->src < topo_.numNodes() &&
                 pkt->dst < topo_.numNodes(), "invalid endpoints");
    pkt->id = (*pkt_ids_)++;
    routing_->initPacket(*pkt, rng_);
    nis_[pkt->src]->enqueue(std::move(pkt), now);
}

void
MeshNetwork::setSink(NodeId n, PacketSink *sink)
{
    nis_[n]->setSink(sink);
}

void
MeshNetwork::cycle(Cycle now)
{
    if (cycle_threads_ > 1) {
        engineCycle(now);
        return;
    }
    PhaseProfile *prof = profile_;
    std::uint64_t t0 = prof ? profileNowNs() : 0;
    const auto lap = [&](std::uint64_t PhaseProfile::*slot) {
        if (!prof)
            return;
        const std::uint64_t t1 = profileNowNs();
        prof->*slot += t1 - t0;
        t0 = t1;
    };
    if (prof)
        ++prof->cycles;
    if (count_cycles_)
        ++stats_->cycles;
    if (faults_)
        faults_->tick(now);
    // Deliver this cycle's channel arrivals first: matured wheel
    // entries set their receiver's pending-port bits and mark it
    // active before either scheduler branch reads the masks.
    if (arrival_.configured())
        arrival_.fire(now);
    // Hoisted fault gate: routerFrozen() is consulted per router tick
    // only while a freeze is actually active; otherwise the fault hook
    // costs this single pointer test per cycle.
    const FaultEngine *fe =
        (faults_ && faults_->anyFrozen()) ? faults_.get() : nullptr;
    lap(&PhaseProfile::bookkeepingNs);
    if (!params_.idleSkip) {
        // Reference scheduler: tick everything every cycle.  A frozen
        // router (ROUTER_FREEZE fault) is skipped entirely: its
        // buffers, arbiters and attached channel endpoints hold still.
        for (auto &r : routers_) {
            if (!fe || !fe->routerFrozen(r->id()))
                r->readInputs(now);
        }
        lap(&PhaseProfile::readInputsNs);
        // The arena's contiguous pending counters gate the phase call:
        // an NI with nothing queued or mid-injection is a guaranteed
        // no-op (injectPhase early-outs on the same counter), so the
        // sweep touches one cache-resident word per idle NI.
        for (NodeId n = 0; n < topo_.numNodes(); ++n) {
            if (ni_slabs_.pendingInject[n] != 0)
                nis_[n]->injectPhase(now);
        }
        lap(&PhaseProfile::injectNs);
        if (tracer_attached_) {
            // Legacy whole-router ticks keep trace events in
            // per-router RC/VA/SA order.
            for (auto &r : routers_) {
                if (!fe || !fe->routerFrozen(r->id()))
                    r->compute(now);
            }
        } else {
            // Batch each pipeline stage across all routers: one
            // streaming pass per stage over the slab arrays.  Routers
            // only interact through >= 1-cycle channels, so nothing a
            // router's stage writes is visible to any other router
            // until next cycle's readInputs, and reordering (RC all,
            // VA all, SA all) is bit-identical to per-router ticks.
            for (auto &r : routers_) {
                if (!fe || !fe->routerFrozen(r->id()))
                    r->routeCompute(now);
            }
            for (auto &r : routers_) {
                if (!fe || !fe->routerFrozen(r->id()))
                    r->vcAllocate(now);
            }
            for (auto &r : routers_) {
                if (!fe || !fe->routerFrozen(r->id()))
                    r->switchAllocate(now);
            }
        }
        lap(&PhaseProfile::computeNs);
        for (NodeId n = 0; n < topo_.numNodes(); ++n) {
            if (ni_slabs_.ejOccupancy[n] != 0)
                nis_[n]->drainPhase(now);
        }
        lap(&PhaseProfile::drainNs);
        postCycle(now);
        lap(&PhaseProfile::bookkeepingNs);
        return;
    }
    // Idle-skip: tick only components that can make progress.  An idle
    // component performs no state change when ticked (arbiters only
    // advance on accept()), so skipping it is bit-exact; iteration is
    // ascending-index, matching the reference sweep order.  Marks made
    // by one phase (NI injectFlit -> router, router ejectFlit -> NI)
    // are observed by the later phases of the same cycle because each
    // forEach reads the live mask.
    router_active_.forEach([&](unsigned n) {
        if (!fe || !fe->routerFrozen(n))
            routers_[n]->readInputs(now);
    });
    lap(&PhaseProfile::readInputsNs);
    ni_active_.forEach([&](unsigned n) {
        if (ni_slabs_.pendingInject[n] != 0)
            nis_[n]->injectPhase(now);
    });
    lap(&PhaseProfile::injectNs);
    if (tracer_attached_) {
        router_active_.forEach([&](unsigned n) {
            if (routers_[n]->bufferedFlits() &&
                (!fe || !fe->routerFrozen(n))) {
                routers_[n]->compute(now);
            }
        });
    } else {
        // Batched stages (see the full-sweep branch above for why this
        // is bit-exact).  Each stage's own O(vcs) eligibility scan
        // subsumes the bufferedFlits() guard: with nothing buffered
        // every stage is a no-op.  Routers marked mid-pass by a
        // channel send have their new flit still in flight (>= 1 cycle
        // of latency), so any pass that visits them no-ops — exactly
        // what the whole-router tick did.
        router_active_.forEach([&](unsigned n) {
            if (!fe || !fe->routerFrozen(n))
                routers_[n]->routeCompute(now);
        });
        router_active_.forEach([&](unsigned n) {
            if (!fe || !fe->routerFrozen(n))
                routers_[n]->vcAllocate(now);
        });
        router_active_.forEach([&](unsigned n) {
            if (!fe || !fe->routerFrozen(n))
                routers_[n]->switchAllocate(now);
        });
    }
    lap(&PhaseProfile::computeNs);
    ni_active_.forEach([&](unsigned n) {
        if (ni_slabs_.ejOccupancy[n] != 0)
            nis_[n]->drainPhase(now);
    });
    lap(&PhaseProfile::drainNs);
    // Retire components that ran dry: a retired router/NI is re-marked
    // by the event that next gives it work (channel send, injection,
    // ejection — or, under arrivalSleep, the wheel at the arrival
    // cycle), never silently forgotten.  A frozen router retires only
    // if it truly has no work (couldWork covers its buffers and
    // pending arrivals whether or not it is being ticked).
    router_active_.retireIf(
        [&](unsigned n) { return !routers_[n]->couldWork(); });
    ni_active_.retireIf([&](unsigned n) { return nis_[n]->idle(); });
    postCycle(now);
    lap(&PhaseProfile::bookkeepingNs);
}

void
MeshNetwork::engineCycle(Cycle now)
{
    PhaseProfile *prof = profile_;
    std::uint64_t t0 = prof ? profileNowNs() : 0;
    const auto lap = [&](std::uint64_t PhaseProfile::*slot) {
        if (!prof)
            return;
        const std::uint64_t t1 = profileNowNs();
        prof->*slot += t1 - t0;
        t0 = t1;
    };
    if (prof)
        ++prof->cycles;
    if (count_cycles_)
        ++stats_->cycles;
    if (faults_)
        faults_->tick(now);
    // Matured channel arrivals mark their receivers before the masks
    // freeze (and before the inline-run heuristic reads the popcounts).
    if (arrival_.configured())
        arrival_.fire(now);
    const FaultEngine *fe =
        (faults_ && faults_->anyFrozen()) ? faults_.get() : nullptr;
    const unsigned S = cycle_threads_;
    const unsigned nodes = topo_.numNodes();

    // Cheap cycles run the shards inline on this thread: the code path
    // (deferred marks/stats, shard order) is identical either way —
    // static sharding makes the thread count invisible to results — so
    // this is purely a latency call.  A tracer pins execution inline
    // so trace callbacks stay single-threaded and in component order.
    const bool inline_run = tracer_attached_ ||
        (params_.idleSkip &&
         router_active_.popCount() + ni_active_.popCount() < 2 * S);
    auto runPhase = [&](auto &&body) {
        if (inline_run) {
            for (unsigned s = 0; s < S; ++s)
                body(s);
        } else {
            parallel::parallelFor(S, body);
        }
    };

    // Freeze both masks: phase code reads the mask state the phase
    // started with (the serial scheduler's visibility, since a fresh
    // same-phase mark is always a no-op visit there), and new marks
    // buffer per worker until the merges below.  The arrival wheel
    // freezes too: worker-thread sends buffer their wheel entries per
    // worker, merged once at the end of the cycle (every entry matures
    // at >= now + 1, so that is early enough).
    router_active_.beginDeferred();
    ni_active_.beginDeferred();
    const bool arr = arrival_.configured();
    if (arr)
        arrival_.beginDeferred();
    lap(&PhaseProfile::bookkeepingNs);

    if (params_.idleSkip) {
        runPhase([&](unsigned s) {
            const auto [lo, hi] = parallel::shardRange(s, nodes, S);
            router_active_.forEachInRange(lo, hi, [&](unsigned n) {
                if (!fe || !fe->routerFrozen(n))
                    routers_[n]->readInputs(now);
            });
        });
        lap(&PhaseProfile::readInputsNs);
        runPhase([&](unsigned s) {
            const auto [lo, hi] = parallel::shardRange(s, nodes, S);
            ni_active_.forEachInRange(lo, hi, [&](unsigned n) {
                if (ni_slabs_.pendingInject[n] != 0)
                    nis_[n]->injectPhase(now);
            });
        });
        lap(&PhaseProfile::injectNs);
        // Injection wakes routers; compute must observe those marks
        // exactly like the serial scheduler's live mask does.
        router_active_.mergeDeferredMarks();
        lap(&PhaseProfile::bookkeepingNs);
        runPhase([&](unsigned s) {
            const auto [lo, hi] = parallel::shardRange(s, nodes, S);
            if (tracer_attached_) {
                // Whole-router ticks keep trace events in per-router
                // RC/VA/SA order (shards run inline under a tracer).
                router_active_.forEachInRange(lo, hi, [&](unsigned n) {
                    if (routers_[n]->bufferedFlits() &&
                        (!fe || !fe->routerFrozen(n))) {
                        routers_[n]->compute(now);
                    }
                });
                return;
            }
            // Batched pipeline stages over this shard's slab slice
            // (bit-exact: routers only interact across >= 1-cycle
            // channels; see the serial scheduler).
            router_active_.forEachInRange(lo, hi, [&](unsigned n) {
                if (!fe || !fe->routerFrozen(n))
                    routers_[n]->routeCompute(now);
            });
            router_active_.forEachInRange(lo, hi, [&](unsigned n) {
                if (!fe || !fe->routerFrozen(n))
                    routers_[n]->vcAllocate(now);
            });
            router_active_.forEachInRange(lo, hi, [&](unsigned n) {
                if (!fe || !fe->routerFrozen(n))
                    routers_[n]->switchAllocate(now);
            });
        });
        lap(&PhaseProfile::computeNs);
        // Ejection (router -> NI) wakes NIs for the drain phase;
        // channel sends wake routers for the next cycle.
        router_active_.mergeDeferredMarks();
        ni_active_.mergeDeferredMarks();
        lap(&PhaseProfile::bookkeepingNs);
        runPhase([&](unsigned s) {
            const auto [lo, hi] = parallel::shardRange(s, nodes, S);
            ni_active_.forEachInRange(lo, hi, [&](unsigned n) {
                if (ni_slabs_.ejOccupancy[n] != 0)
                    nis_[n]->drainPhase(now);
            });
        });
        lap(&PhaseProfile::drainNs);
    } else {
        // Reference full sweep, sharded.  Marks still defer (the
        // channels are wired to the masks) so they merge at barriers
        // instead of racing.
        runPhase([&](unsigned s) {
            const auto [lo, hi] = parallel::shardRange(s, nodes, S);
            for (unsigned n = lo; n < hi; ++n) {
                if (!fe || !fe->routerFrozen(n))
                    routers_[n]->readInputs(now);
            }
        });
        lap(&PhaseProfile::readInputsNs);
        runPhase([&](unsigned s) {
            const auto [lo, hi] = parallel::shardRange(s, nodes, S);
            for (unsigned n = lo; n < hi; ++n) {
                if (ni_slabs_.pendingInject[n] != 0)
                    nis_[n]->injectPhase(now);
            }
        });
        lap(&PhaseProfile::injectNs);
        router_active_.mergeDeferredMarks();
        lap(&PhaseProfile::bookkeepingNs);
        runPhase([&](unsigned s) {
            const auto [lo, hi] = parallel::shardRange(s, nodes, S);
            if (tracer_attached_) {
                for (unsigned n = lo; n < hi; ++n) {
                    if (!fe || !fe->routerFrozen(n))
                        routers_[n]->compute(now);
                }
                return;
            }
            for (unsigned n = lo; n < hi; ++n) {
                if (!fe || !fe->routerFrozen(n))
                    routers_[n]->routeCompute(now);
            }
            for (unsigned n = lo; n < hi; ++n) {
                if (!fe || !fe->routerFrozen(n))
                    routers_[n]->vcAllocate(now);
            }
            for (unsigned n = lo; n < hi; ++n) {
                if (!fe || !fe->routerFrozen(n))
                    routers_[n]->switchAllocate(now);
            }
        });
        lap(&PhaseProfile::computeNs);
        router_active_.mergeDeferredMarks();
        ni_active_.mergeDeferredMarks();
        lap(&PhaseProfile::bookkeepingNs);
        runPhase([&](unsigned s) {
            const auto [lo, hi] = parallel::shardRange(s, nodes, S);
            for (unsigned n = lo; n < hi; ++n) {
                if (ni_slabs_.ejOccupancy[n] != 0)
                    nis_[n]->drainPhase(now);
            }
        });
        lap(&PhaseProfile::drainNs);
    }

    router_active_.endDeferred();
    ni_active_.endDeferred();
    router_active_.mergeDeferredMarks();
    ni_active_.mergeDeferredMarks();
    if (arr) {
        arrival_.endDeferred();
        arrival_.mergeDeferred();
    }

    // Fold per-shard traversal counts into the network total before
    // anything downstream (watchdog, telemetry, checker) reads it.
    for (auto &t : shard_traversed_) {
        flits_traversed_total_ += t.value;
        t.value = 0;
    }

    if (params_.idleSkip) {
        // Retiring before the delivery replay is equivalent to the
        // serial retire-after-deliveries order: a replayed delivery
        // that enqueues re-marks its NI live, so the final mask state
        // matches either way.
        router_active_.retireIf(
            [&](unsigned n) { return !routers_[n]->couldWork(); });
        ni_active_.retireIf([&](unsigned n) { return nis_[n]->idle(); });
    }

    if (defer_to_parent_) {
        lap(&PhaseProfile::bookkeepingNs);
        return; // DoubleNetwork flushes and runs postCycle, in order
    }
    flushEngineDeferred();
    postCycle(now);
    lap(&PhaseProfile::bookkeepingNs);
}

void
MeshNetwork::flushEngineDeferred()
{
    // Ascending NI order, each NI's counters/samples then deliveries:
    // exactly the order the serial drain produces shared-state
    // updates, so accumulator and histogram contents (including
    // floating-point sums) are bit-identical to the serial scheduler.
    for (auto &ni : nis_) {
        ni->applyDeferredStats();
        ni->flushDeferredDeliveries();
    }
}

void
MeshNetwork::postCycle(Cycle now)
{
    if (params_.validate && now >= next_check_) {
        checker_->check(now);
        next_check_ = now + params_.validateInterval;
    }
    if (params_.watchdogWindow != 0) {
        // O(1) per cycle: any flit movement — injection into a router,
        // a switch traversal, or ejection-buffer drain — is progress.
        const std::uint64_t progress =
            net_flits_in_ + net_flits_out_ + flits_traversed_total_;
        if (inflight_ == 0 || progress != wd_last_progress_ ||
            now < wd_last_change_) {
            wd_last_progress_ = progress;
            wd_last_change_ = now;
        } else if (now - wd_last_change_ >= params_.watchdogWindow) {
            fireWatchdog(now, "no_progress");
        }
    }
    if (params_.maxPacketAge != 0 && inflight_ != 0 &&
        (now & 1023) == 0) {
        // Livelock scan: cheap enough on a 1024-cycle stride.
        const Cycle oldest = checker_->oldestCreated();
        if (oldest != INVALID_CYCLE &&
            now - oldest > params_.maxPacketAge) {
            fireWatchdog(now, "packet_age");
        }
    }
}

void
MeshNetwork::fireWatchdog(Cycle now, const char *reason)
{
    WatchdogReport report;
    report.now = now;
    report.window = params_.watchdogWindow;
    report.inflight = inflight_;
    const Cycle oldest = checker_->oldestCreated();
    report.oldestAge = oldest == INVALID_CYCLE ? 0 : now - oldest;
    report.reason = reason;
    report.snapshotJson = diagnosticReport(now);
    if (wd_handler_) {
        wd_handler_(report);
        // Re-arm so an observing handler sees one report per stuck
        // window instead of one per cycle.
        wd_last_change_ = now;
        wd_last_progress_ =
            net_flits_in_ + net_flits_out_ + flits_traversed_total_;
        return;
    }
    std::ofstream out(params_.watchdogSnapshotPath);
    if (out)
        out << report.snapshotJson << "\n";
    tenoc_fatal("network watchdog: ", reason, " at cycle ", now, " — ",
                report.inflight, " packet(s) in flight, oldest is ",
                report.oldestAge, " cycles old; diagnostic snapshot ",
                out ? "written to " : "could not be written to ",
                params_.watchdogSnapshotPath);
}

void
MeshNetwork::attachTelemetry(telemetry::TelemetryHub &hub)
{
    attachTelemetryPrefixed(hub, "");
}

void
MeshNetwork::attachTelemetryPrefixed(telemetry::TelemetryHub &hub,
                                     const std::string &prefix)
{
    if (auto *sampler = hub.sampler()) {
        const std::size_t nodes = routers_.size();
        sampler->addGaugeVector(
            prefix + "router_occ", nodes, [this](std::size_t n) {
                return static_cast<double>(routers_[n]->bufferedFlits());
            });
        sampler->addCounterVector(
            prefix + "link_flits", nodes * NUM_DIRS,
            [this](std::size_t i) {
                return static_cast<double>(
                    routers_[i / NUM_DIRS]->linkFlits(i % NUM_DIRS));
            });
        // Network-level running counter kept by the routers themselves
        // (Router::setTraversalCounter): sampling is O(1) instead of
        // re-summing every router per interval.
        sampler->addCounter(prefix + "flits_traversed", [this] {
            return static_cast<double>(flits_traversed_total_);
        });
    }
    if (auto *tracer = hub.tracer()) {
        // Trace sinks are single-threaded; the parallel engine runs
        // its shards inline (serial, ascending order) while a tracer
        // is attached so event order matches the serial scheduler.
        tracer_attached_ = true;
        for (auto &r : routers_)
            r->setTracer(tracer);
        for (auto &ni : nis_)
            ni->setTracer(tracer);
    }
}

namespace
{

const char *
vcStateName(VcState s)
{
    switch (s) {
      case VcState::IDLE:
        return "IDLE";
      case VcState::ROUTING:
        return "ROUTING";
      case VcState::VC_ALLOC:
        return "VC_ALLOC";
      case VcState::ACTIVE:
        return "ACTIVE";
    }
    return "?";
}

} // namespace

telemetry::JsonValue
MeshNetwork::diagnosticSnapshot(Cycle now) const
{
    using telemetry::JsonValue;
    JsonValue doc = JsonValue::makeObject();
    doc.set("schema", "tenoc-watchdog-v1");
    doc.set("cycle", static_cast<std::uint64_t>(now));
    doc.set("packets_in_flight", inflight_);
    doc.set("flits_in_network", net_flits_in_ - net_flits_out_);
    const Cycle oldest = checker_->oldestCreated();
    doc.set("oldest_packet_age",
            oldest == INVALID_CYCLE
                ? JsonValue()
                : JsonValue(static_cast<std::uint64_t>(now - oldest)));

    JsonValue topo = JsonValue::makeObject();
    topo.set("rows", static_cast<std::uint64_t>(topo_.rows()));
    topo.set("cols", static_cast<std::uint64_t>(topo_.cols()));
    doc.set("topology", std::move(topo));

    if (faults_) {
        const FaultStats &fs = faults_->stats();
        JsonValue faults = JsonValue::makeObject();
        faults.set("link_stalls", fs.linkStalls);
        faults.set("router_freezes", fs.routerFreezes);
        faults.set("credit_drops", fs.creditDrops);
        doc.set("faults", std::move(faults));
    }

    // Live invariant audit: a deadlock caused by state corruption
    // (e.g. a leaked credit) names itself here.
    JsonValue violations = JsonValue::makeArray();
    for (const Violation &v : checker_->audit(now)) {
        JsonValue entry = JsonValue::makeObject();
        entry.set("kind", violationKindName(v.kind));
        entry.set("message", v.message);
        violations.push(std::move(entry));
    }
    doc.set("violations", std::move(violations));

    // Non-idle routers: per-VC pipeline state, credits, and wait-for
    // edges (an ACTIVE VC whose granted output VC has no credits is
    // blocked on its downstream neighbor — the cycles in this edge
    // list are the deadlock).
    JsonValue routers = JsonValue::makeArray();
    JsonValue wait_for = JsonValue::makeArray();
    for (const auto &r : routers_) {
        if (!r->couldWork())
            continue;
        JsonValue rj = JsonValue::makeObject();
        rj.set("id", static_cast<std::uint64_t>(r->id()));
        if (faults_)
            rj.set("frozen", faults_->routerFrozen(r->id()));
        rj.set("buffered_flits", r->bufferedFlits());
        JsonValue vcs = JsonValue::makeArray();
        for (unsigned in = 0; in < r->numInputs(); ++in) {
            for (unsigned vc = 0; vc < r->numVcs(); ++vc) {
                const VcState state = r->vcState(in, vc);
                const auto occ = r->vcOccupancy(in, vc);
                if (state == VcState::IDLE && occ == 0)
                    continue;
                JsonValue vj = JsonValue::makeObject();
                vj.set("in", static_cast<std::uint64_t>(in));
                vj.set("vc", static_cast<std::uint64_t>(vc));
                vj.set("state", vcStateName(state));
                vj.set("occupancy", static_cast<std::uint64_t>(occ));
                if (state == VcState::VC_ALLOC ||
                    state == VcState::ACTIVE) {
                    vj.set("out_port", static_cast<std::uint64_t>(
                                           r->vcOutPort(in, vc)));
                }
                if (state == VcState::ACTIVE) {
                    const unsigned out_port = r->vcOutPort(in, vc);
                    const unsigned out_vc = r->vcOutVc(in, vc);
                    vj.set("out_vc",
                           static_cast<std::uint64_t>(out_vc));
                    if (out_port < NUM_DIRS &&
                        r->outputCredits(out_port, out_vc) == 0) {
                        const NodeId nb = topo_.neighbor(
                            r->id(), static_cast<Direction>(out_port));
                        JsonValue edge = JsonValue::makeObject();
                        edge.set("router",
                                 static_cast<std::uint64_t>(r->id()));
                        edge.set("in", static_cast<std::uint64_t>(in));
                        edge.set("vc", static_cast<std::uint64_t>(vc));
                        edge.set("out_port",
                                 static_cast<std::uint64_t>(out_port));
                        edge.set("out_vc",
                                 static_cast<std::uint64_t>(out_vc));
                        edge.set("waits_on",
                                 static_cast<std::uint64_t>(nb));
                        wait_for.push(std::move(edge));
                    }
                }
                if (const Flit *front = r->vcFront(in, vc)) {
                    vj.set("front_pkt", front->pkt->id);
                    if (front->pkt->createdCycle != INVALID_CYCLE) {
                        vj.set("front_age",
                               static_cast<std::uint64_t>(
                                   now - front->pkt->createdCycle));
                    }
                }
                vcs.push(std::move(vj));
            }
        }
        rj.set("vcs", std::move(vcs));
        JsonValue credits = JsonValue::makeArray();
        for (unsigned d = 0; d < NUM_DIRS; ++d) {
            if (!r->outputConnected(d))
                continue;
            JsonValue cj = JsonValue::makeArray();
            for (unsigned vc = 0; vc < r->numVcs(); ++vc)
                cj.push(static_cast<std::uint64_t>(
                    r->outputCredits(d, vc)));
            JsonValue dj = JsonValue::makeObject();
            dj.set("dir", static_cast<std::uint64_t>(d));
            dj.set("credits", std::move(cj));
            credits.push(std::move(dj));
        }
        rj.set("output_credits", std::move(credits));
        routers.push(std::move(rj));
    }
    doc.set("routers", std::move(routers));
    doc.set("wait_for", std::move(wait_for));

    JsonValue nis = JsonValue::makeArray();
    for (const auto &ni : nis_) {
        const NiAuditInfo info = ni->audit();
        if (info.idle)
            continue;
        JsonValue nj = JsonValue::makeObject();
        nj.set("node", static_cast<std::uint64_t>(ni->node()));
        nj.set("queued_packets",
               static_cast<std::uint64_t>(info.queuedPackets));
        nj.set("active_slots",
               static_cast<std::uint64_t>(info.activeSlots));
        nj.set("ejection_flits",
               static_cast<std::uint64_t>(info.ejFlits));
        if (info.oldestCreated != INVALID_CYCLE) {
            nj.set("oldest_packet_age",
                   static_cast<std::uint64_t>(
                       now - info.oldestCreated));
        }
        nis.push(std::move(nj));
    }
    doc.set("nis", std::move(nis));
    return doc;
}

std::string
MeshNetwork::diagnosticReport(Cycle now) const
{
    return diagnosticSnapshot(now).toString();
}

bool
MeshNetwork::drained() const
{
    // Every packet is counted in at NI::enqueue and out when its tail
    // flit leaves the ejection buffer, so one counter covers injection
    // queues, router buffers, flit channels and ejection buffers.
    return inflight_ == 0;
}

DoubleNetwork::DoubleNetwork(const MeshNetworkParams &base)
{
    MeshNetworkParams slice = base;
    if (base.flitBytes < 2 || base.flitBytes % 2 != 0) {
        tenoc_fatal("invalid network config: a channel-sliced double"
                    " network halves the flit width, so flitBytes must"
                    " be an even value >= 2 (got ", base.flitBytes,
                    ")");
    }
    slice.flitBytes = base.flitBytes / 2;
    slice.protoClasses = 1; // dedicated networks need no protocol VCs
    // Keep each slice's total buffer *storage* equal to the unsliced
    // network by doubling the lanes per class (flits are half-width).
    // See DESIGN.md: our flit-level wormhole router needs the extra
    // lanes to reach BookSim-like utilization on half-width worms.
    slice.vcsPerClass = base.vcsPerClass * 2;

    stats_ = std::make_unique<NetStats>(
        base.topo.rows * base.topo.cols);

    // MC terminal ports are direction-specific: requests only *eject*
    // at MCs (request slice), replies only *inject* (reply slice), so
    // the multi-port upgrade applies to one slice each (Sec. IV-D).
    MeshNetworkParams req_slice = slice;
    req_slice.mcInjPorts = 1;
    request_ = std::make_unique<MeshNetwork>(req_slice, stats_.get(),
                                             &next_pkt_id_);

    MeshNetworkParams rep_slice = slice;
    rep_slice.mcEjPorts = 1;
    rep_slice.seed = base.seed + 0x9e3779b9ULL;
    reply_ = std::make_unique<MeshNetwork>(rep_slice, stats_.get(),
                                           &next_pkt_id_);

    // Intra-cycle parallelism: run the slices as two pool tasks.  The
    // slices resolved the same cycleThreads value (identical params
    // and cap at construction), so engine mode is all-or-nothing.
    engine_ = request_->cycleThreads() > 1 &&
              reply_->cycleThreads() > 1;
    if (engine_) {
        request_->setEngineParent();
        reply_->setEngineParent();
    }
}

unsigned
DoubleNetwork::flitBytes() const
{
    return request_->flitBytes();
}

MeshNetwork &
DoubleNetwork::subnetFor(int proto_class) const
{
    return proto_class == 0 ? *request_ : *reply_;
}

bool
DoubleNetwork::canInject(NodeId n, int proto_class) const
{
    return subnetFor(proto_class).canInject(n, proto_class);
}

unsigned
DoubleNetwork::injectSpace(NodeId n, int proto_class) const
{
    return subnetFor(proto_class).injectSpace(n, proto_class);
}

void
DoubleNetwork::inject(PacketPtr pkt, Cycle now)
{
    subnetFor(pkt->protoClass).inject(std::move(pkt), now);
}

void
DoubleNetwork::setSink(NodeId n, PacketSink *sink)
{
    request_->setSink(n, sink);
    reply_->setSink(n, sink);
}

void
DoubleNetwork::cycle(Cycle now)
{
    ++stats_->cycles;
    if (!engine_) {
        // Each slice bumps the shared cycle counter; correct for the
        // double count so `cycles` tracks wall interconnect cycles.
        request_->cycle(now);
        reply_->cycle(now);
        stats_->cycles -= 2;
        return;
    }
    // Engine mode: the slices don't count cycles themselves and defer
    // every shared side effect (NetStats deltas, deliveries,
    // postCycle) to this thread, which flushes request-first — the
    // serial slice order — after both have quiesced.  A slice's own
    // nested parallelFor finds the pool busy and runs inline, which
    // is bit-exact by the static-sharding contract.
    MeshNetwork *slices[2] = {request_.get(), reply_.get()};
    if (telemetry_attached_) {
        // Trace sinks are single-threaded: keep slice execution (and
        // thus trace event order) serial while a tracer is attached.
        slices[0]->cycle(now);
        slices[1]->cycle(now);
    } else {
        parallel::parallelFor(
            2, [&](unsigned s) { slices[s]->cycle(now); });
    }
    request_->flushEngineDeferred();
    request_->postCycle(now);
    reply_->flushEngineDeferred();
    reply_->postCycle(now);
}

bool
DoubleNetwork::drained() const
{
    return request_->drained() && reply_->drained();
}

std::string
DoubleNetwork::diagnosticReport(Cycle now) const
{
    telemetry::JsonValue doc = telemetry::JsonValue::makeObject();
    doc.set("schema", "tenoc-watchdog-double-v1");
    doc.set("request", request_->diagnosticSnapshot(now));
    doc.set("reply", reply_->diagnosticSnapshot(now));
    return doc.toString();
}

void
DoubleNetwork::attachTelemetry(telemetry::TelemetryHub &hub)
{
    if (hub.tracer())
        telemetry_attached_ = true;
    request_->attachTelemetryPrefixed(hub, "req_");
    reply_->attachTelemetryPrefixed(hub, "rep_");
}

std::unique_ptr<Network>
makeMeshNetwork(const MeshNetworkParams &params, bool sliced)
{
    if (sliced)
        return std::make_unique<DoubleNetwork>(params);
    return std::make_unique<MeshNetwork>(params);
}

// --- checkpoint/restore ---

void
Network::save(SnapshotWriter &w) const
{
    (void)w;
    tenoc_fatal("checkpointing is not supported for this network kind "
                "(ideal networks model no restorable state)");
}

void
Network::restore(SnapshotReader &r)
{
    (void)r;
    tenoc_fatal("checkpoint restore is not supported for this network "
                "kind");
}

bool
Network::injectMulticast(const std::vector<NodeId> &dsts,
                         const Packet &proto, Cycle now,
                         std::vector<const Packet *> *forked)
{
    tenoc_assert(!dsts.empty(), "multicast needs >= 1 destination");
    // All-or-nothing gate.  Every fork shares src and protoClass, so
    // one space query covers the whole burst — including on a sliced
    // DoubleNetwork, where the class picks the slice.
    if (injectSpace(proto.src, proto.protoClass) < dsts.size())
        return false;
    for (NodeId dst : dsts) {
        PacketPtr p = makePacket();
        p->src = proto.src;
        p->dst = dst;
        p->op = proto.op;
        p->sizeFlits = proto.sizeFlits;
        p->sizeBytes = proto.sizeBytes;
        p->protoClass = proto.protoClass;
        p->addr = proto.addr;
        p->tag = proto.tag;
        p->collectiveId = proto.collectiveId;
        // Stamp all forks with one creation time so their latency
        // samples measure the same collective issue point.
        p->createdCycle =
            proto.createdCycle != INVALID_CYCLE ? proto.createdCycle
                                                : now;
        Packet *raw = p.get();
        inject(std::move(p), now);
        // Borrowed, not owned: the fork stays alive inside the network
        // until delivery, and callers registering with a shadow model
        // read it before the next cycle() call.
        if (forked)
            forked->push_back(raw);
    }
    return true;
}

void
NetStats::save(SnapshotWriter &w) const
{
    w.tag("NSTA");
    w.u64(cycles);
    w.u64(packetsInjected);
    w.u64(packetsEjected);
    w.u64(flitsInjected);
    w.u64(flitsEjected);
    saveStat(w, totalLatency);
    saveStat(w, netLatency);
    saveStat(w, totalLatencyHist);
    saveStat(w, queueLatencyHist);
    saveStat(w, traversalLatencyHist);
    saveStat(w, serializationLatencyHist);
    saveU64Vector(w, nodeInjectedFlits);
    saveU64Vector(w, nodeEjectedFlits);
    saveU64Vector(w, nodeInjectedBytes);
    saveU64Vector(w, nodeEjectedBytes);
}

void
NetStats::restore(SnapshotReader &r)
{
    r.tag("NSTA");
    cycles = r.u64();
    packetsInjected = r.u64();
    packetsEjected = r.u64();
    flitsInjected = r.u64();
    flitsEjected = r.u64();
    restoreStat(r, totalLatency);
    restoreStat(r, netLatency);
    restoreStat(r, totalLatencyHist);
    restoreStat(r, queueLatencyHist);
    restoreStat(r, traversalLatencyHist);
    restoreStat(r, serializationLatencyHist);
    restoreU64Vector(r, nodeInjectedFlits);
    restoreU64Vector(r, nodeEjectedFlits);
    restoreU64Vector(r, nodeInjectedBytes);
    restoreU64Vector(r, nodeEjectedBytes);
}

void
MeshNetwork::save(SnapshotWriter &w) const
{
    if (faults_)
        tenoc_fatal("cannot checkpoint a fault-injected network: the "
                    "fault engine's schedule position is not serialized");
    w.tag("MESH");
    // Structural fingerprint: enough to reject a restore into a
    // differently shaped network with a clear message instead of a
    // byte-offset panic deep inside a component.
    w.u32(topo_.numNodes());
    w.u32(static_cast<std::uint32_t>(params_.topo.kind));
    w.u32(topo_.concentration());
    w.u32(params_.flitBytes);
    w.u32(params_.protoClasses);
    w.u32(params_.vcsPerClass);
    w.u32(params_.vcDepth);
    w.u32(params_.mcInjPorts);
    w.u32(params_.mcEjPorts);
    w.u64(flit_channels_.size());
    w.u64(credit_channels_.size());

    const auto st = rng_.state();
    for (const std::uint64_t s : st)
        w.u64(s);
    w.u64(own_pkt_ids_);
    w.u64(inflight_);
    w.u64(flits_traversed_total_);
    w.u64(net_flits_in_);
    w.u64(net_flits_out_);
    // Monitor bookkeeping (validation schedule, watchdog progress
    // marks) is deliberately NOT serialized: it is derived scheduling
    // state, and keeping it out of the blob makes snapshots identical
    // across monitor configurations (validate on/off, watchdog
    // window), so a warm-up checkpoint can feed differently-monitored
    // downstream runs bit-for-bit.  The arrival wheel is derived state
    // too: at a cycle boundary every matured arrival has been drained
    // (fire marks its receiver and readInputs consumes the backlog in
    // the same cycle; stalling faults cannot be checkpointed), so the
    // pending words are provably all-zero and the wheel holds only
    // future entries, rebuilt on restore from the channels' recorded
    // arrival cycles.
    if (arrival_.configured()) {
        for (NodeId n = 0; n < topo_.numNodes(); ++n) {
            tenoc_assert(arrival_.pending(n) == 0,
                         "arrival pending word nonzero at checkpoint"
                         " (router ", n, ")");
        }
    }
    saveU64Vector(w, router_active_.words());
    saveU64Vector(w, ni_active_.words());
    for (const auto &router : routers_)
        router->save(w);
    for (const auto &ni : nis_)
        ni->save(w);
    for (const auto &ch : flit_channels_) {
        ch.save(w, [](SnapshotWriter &sw, const Flit &f) {
            saveFlit(sw, f);
        });
    }
    for (const auto &ch : credit_channels_) {
        ch.save(w, [](SnapshotWriter &sw, const Credit &c) {
            sw.u32(c.vc);
        });
    }
    if (stats_ == owned_stats_.get())
        stats_->save(w);
    w.tag("MEND");
}

void
MeshNetwork::restore(SnapshotReader &r)
{
    tenoc_assert(!faults_, "restore into a fault-injected network");
    r.tag("MESH");
    const auto expect = [](std::uint64_t got, std::uint64_t want,
                           const char *what) {
        if (got != want)
            tenoc_fatal("snapshot structural mismatch: ", what,
                        " is ", got, " in the snapshot but ", want,
                        " in this network");
    };
    expect(r.u32(), topo_.numNodes(), "node count");
    expect(r.u32(), static_cast<std::uint32_t>(params_.topo.kind),
           "topology kind");
    expect(r.u32(), topo_.concentration(), "concentration");
    expect(r.u32(), params_.flitBytes, "flit width");
    expect(r.u32(), params_.protoClasses, "protocol classes");
    expect(r.u32(), params_.vcsPerClass, "VCs per class");
    expect(r.u32(), params_.vcDepth, "VC depth");
    expect(r.u32(), params_.mcInjPorts, "MC injection ports");
    expect(r.u32(), params_.mcEjPorts, "MC ejection ports");
    expect(r.u64(), flit_channels_.size(), "flit channel count");
    expect(r.u64(), credit_channels_.size(), "credit channel count");

    std::array<std::uint64_t, 4> st;
    for (std::uint64_t &s : st)
        s = r.u64();
    rng_.setState(st);
    own_pkt_ids_ = r.u64();
    inflight_ = r.u64();
    flits_traversed_total_ = r.u64();
    net_flits_in_ = r.u64();
    net_flits_out_ = r.u64();
    // Re-arm the monitors instead of restoring them: the next
    // postCycle() validates (read-only) and re-baselines the watchdog
    // (progress != 0 whenever flits are in flight, so it can never
    // fire spuriously off the zeroed marks).
    next_check_ = 0;
    wd_last_progress_ = 0;
    wd_last_change_ = 0;
    std::vector<std::uint64_t> words(router_active_.words().size());
    restoreU64Vector(r, words);
    router_active_.setWords(words);
    words.assign(ni_active_.words().size(), 0);
    restoreU64Vector(r, words);
    ni_active_.setWords(words);
    for (const auto &router : routers_)
        router->restore(r);
    for (const auto &ni : nis_)
        ni->restore(r);
    for (auto &ch : flit_channels_) {
        ch.restore(r, [](SnapshotReader &sr) { return loadFlit(sr); });
    }
    for (auto &ch : credit_channels_) {
        ch.restore(r, [](SnapshotReader &sr) {
            Credit c;
            c.vc = sr.u32();
            return c;
        });
    }
    // The arrival wheel is derived state: reset it and re-post one
    // wake per restored in-flight item.  The reset wheel is unprimed,
    // so its first fire() does a full sweep — arbitrary resume cycles
    // are safe.  Without a scheduler the fallback marks the receiver
    // of every non-empty channel, which also heals a snapshot taken
    // under arrivalSleep into a wake-on-send network (the saving run's
    // active words do not cover receivers asleep until an arrival).
    if (arrival_.configured()) {
        arrival_.configure(topo_.numNodes(), params_.channelLatency,
                           &router_active_);
    }
    for (auto &ch : flit_channels_)
        ch.reschedulePending();
    for (auto &ch : credit_channels_)
        ch.reschedulePending();
    if (stats_ == owned_stats_.get())
        stats_->restore(r);
    r.tag("MEND");
}

void
DoubleNetwork::save(SnapshotWriter &w) const
{
    w.tag("DNET");
    w.u64(next_pkt_id_);
    stats_->save(w);
    request_->save(w);
    reply_->save(w);
}

void
DoubleNetwork::restore(SnapshotReader &r)
{
    r.tag("DNET");
    next_pkt_id_ = r.u64();
    stats_->restore(r);
    request_->restore(r);
    reply_->restore(r);
}

} // namespace tenoc
