/**
 * @file
 * Figure 7 (and Figure 8): speedup of a perfect interconnect over the
 * baseline mesh, per benchmark, with the LL/LH/HH classification; and
 * the speedup-vs-MC-injection-rate scatter of Fig. 8.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace tenoc;
    using namespace tenoc::bench;

    banner("Figure 7/8 - perfect-NoC limit study",
           "HM speedup 36% overall, 87% for HH; speedup correlates "
           "with MC injection rate");
    const double scale = scaleFromArgs(argc, argv);

    const auto base = suite(ConfigId::BASELINE_TB_DOR, scale);
    const auto perf = suite(ConfigId::PERFECT, scale);
    const auto sp = speedups(base, perf);

    std::printf("\n--- Fig. 7: perfect-NoC speedup per benchmark ---\n");
    std::printf("%-6s %-6s %9s %10s %12s %10s\n", "bench", "class",
                "speedup", "accepted", "(B/cyc/node)", "measured");
    unsigned misclassified = 0;
    for (std::size_t i = 0; i < base.size(); ++i) {
        const auto measured =
            classify(sp[i], perf[i].result.acceptedBytesPerNode);
        misclassified += (measured != base[i].cls);
        std::printf("%-6s %-6s %9s %10.2f %12s %10s%s\n",
                    base[i].abbr.c_str(),
                    trafficClassName(base[i].cls), pct(sp[i]).c_str(),
                    perf[i].result.acceptedBytesPerNode, "",
                    trafficClassName(measured),
                    measured != base[i].cls ? "  <-mismatch" : "");
    }
    std::printf("\nHM speedup (all): %s   (paper: +36%%)\n",
                pct(harmonicMeanSpeedup(base, perf)).c_str());
    printClassMeans(base, perf);
    std::printf("  (paper: LL small, HH +87%%; Rodinia +42%%)\n");
    std::printf("  class mismatches vs paper grouping: %u / 31\n",
                misclassified);

    std::printf("\n--- Fig. 8: speedup vs MC injection rate "
                "(perfect NoC) ---\n");
    std::printf("%-6s %-6s %22s %9s\n", "bench", "class",
                "MC inj rate [flits/cyc]", "speedup");
    for (std::size_t i = 0; i < base.size(); ++i) {
        std::printf("%-6s %-6s %22.4f %9s\n", base[i].abbr.c_str(),
                    trafficClassName(base[i].cls),
                    perf[i].result.mcInjectionRate,
                    pct(sp[i]).c_str());
    }
    std::printf("\npaper shape: speedups rise with the MC injection "
                "rate (the read-reply path is the bottleneck).\n");
    return 0;
}
