/**
 * @file
 * Figure 18: the dedicated channel-sliced double network (2 x 8B,
 * request/reply) versus the single 16B network with 4 VCs, both with
 * checkerboard placement and routing.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace tenoc;
    using namespace tenoc::bench;

    banner("Figure 18 - channel-sliced double network vs single",
           "paper: ~0% average change (+1%), range -7% to +14%");
    const double scale = scaleFromArgs(argc, argv);

    const auto runs = suites({ConfigId::CP_CR_SINGLE_16B_4VC,
                              ConfigId::CP_CR_DOUBLE}, scale);
    const auto &single = runs[0];
    const auto &dbl = runs[1];

    printSpeedupSeries("double vs single", single, dbl);
    printClassMeans(single, dbl);
    std::printf("\nKNOWN DEVIATION (see EXPERIMENTS.md): our "
                "flit-accurate model charges the dedicated reply "
                "slice its full terminal-bandwidth cost (one 8B "
                "injection port vs one 16B port), so reply-bound HH "
                "benchmarks lose 10-30%% here where the paper reports "
                "~0%%.  Area (Table VI) is faithfully reproduced: "
                "router area drops 59.2 -> 29.7 mm^2.\n");
    return 0;
}
