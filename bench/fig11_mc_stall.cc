/**
 * @file
 * Figure 11: fraction of time the MC injection ports are blocked,
 * preventing data read out of DRAM from returning to compute nodes.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace tenoc;
    using namespace tenoc::bench;

    banner("Figure 11 - MC reply-path stalls on the baseline mesh",
           "MCs stalled up to ~70% of the time on HH benchmarks");
    const auto telemetry_cfg =
        telemetry::parseTelemetryFlags(argc, argv);
    const double scale = scaleFromArgs(argc, argv);

    const auto base = suite(ConfigId::BASELINE_TB_DOR, scale);

    std::printf("\n%-6s %-6s %14s %14s %16s\n", "bench", "class",
                "stall (mean)", "stall (max)", "DRAM efficiency");
    double hh_max = 0.0;
    for (const auto &r : base) {
        std::printf("%-6s %-6s %13.1f%% %13.1f%% %16.2f\n",
                    r.abbr.c_str(), trafficClassName(r.cls),
                    100.0 * r.result.mcStallFractionMean,
                    100.0 * r.result.mcStallFractionMax,
                    r.result.dramEfficiency);
        if (r.cls == TrafficClass::HH)
            hh_max = std::max(hh_max, r.result.mcStallFractionMax);
    }
    std::printf("\nmax HH stall fraction: %.1f%% (paper: up to "
                "~70%%)\n", 100.0 * hh_max);
    std::printf("paper shape: LL near zero, LH moderate, HH heavily "
                "stalled - the many-to-few-to-many reply bottleneck.\n");
    runTelemetryWorkload(telemetry_cfg, ConfigId::BASELINE_TB_DOR,
                         scale);
    return 0;
}
