/**
 * @file
 * Figure 2: the throughput-effective design space.  Plots each design
 * as (average application throughput [IPC], 1/chip-area [1/mm^2]);
 * designs closer to the top right are more throughput-effective.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace tenoc;
    using namespace tenoc::bench;

    banner("Figure 2 - throughput-effective design space",
           "Balanced mesh / 2x BW / Thr.Eff. / Ideal NoC scatter; "
           "curves of constant IPC/mm^2");
    const double scale = scaleFromArgs(argc, argv);

    struct Point
    {
        const char *label;
        ConfigId id;
        bool ideal_area;
    };
    const Point points[] = {
        {"Balanced Mesh (Sec. III)", ConfigId::BASELINE_TB_DOR, false},
        {"2x BW", ConfigId::TB_DOR_2X, false},
        {"Thr. Eff. (Sec. IV)", ConfigId::THROUGHPUT_EFFECTIVE, false},
        {"Thr. Eff. single-net variant", ConfigId::CP_CR_2INJ_SINGLE,
         false},
        {"Ideal NoC", ConfigId::PERFECT, true},
    };

    const auto base = suite(ConfigId::BASELINE_TB_DOR, scale);
    std::printf("\n%-30s %10s %12s %14s %12s\n", "design", "HM IPC",
                "area [mm^2]", "1/area [1/mm2]", "IPC/mm^2");
    double base_eff = 0.0;
    for (const auto &pt : points) {
        const auto runs = (pt.id == ConfigId::BASELINE_TB_DOR)
            ? base : suite(pt.id, scale);
        const double ipc = harmonicMeanIpc(runs);
        // An ideal NoC has zero interconnect area (Sec. I).
        const double area = pt.ideal_area ? AreaModel::kComputeAreaMm2
                                          : chipAreaFor(pt.id);
        const double eff = throughputEffectiveness(ipc, area);
        if (pt.id == ConfigId::BASELINE_TB_DOR)
            base_eff = eff;
        std::printf("%-30s %10.1f %12.1f %14.6f %12.5f", pt.label, ipc,
                    area, 1.0 / area, eff);
        if (base_eff > 0.0)
            std::printf("  (%s vs baseline)", pct(eff / base_eff).c_str());
        std::printf("\n");
    }
    std::printf("\npaper shape: Thr.Eff. sits closest to the Ideal-NoC "
                "iso-IPC/mm^2 curve; 2x BW gains IPC but loses area "
                "(52.95%% NoC overhead).\n");
    return 0;
}
