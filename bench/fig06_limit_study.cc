/**
 * @file
 * Figure 6: limit study with a zero-latency network whose aggregate
 * bandwidth is capped at a fraction of off-chip DRAM bandwidth.
 * Reports application throughput (normalized to infinite bandwidth)
 * and throughput per estimated area cost; the paper finds the
 * per-cost optimum at a bisection ratio of 0.7-0.8, matching a mesh
 * with 16-byte channels.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace tenoc;
    using namespace tenoc::bench;

    banner("Figure 6 - balanced-design limit study",
           "IPC saturates near ratio 0.8 (93% of infinite BW); "
           "IPC/cost peaks at 0.7-0.8");
    const double scale = scaleFromArgs(argc, argv, 0.5);

    // Infinite-bandwidth reference (perfect network).
    const auto inf = suite(ConfigId::PERFECT, scale);
    const double inf_ipc = harmonicMeanIpc(inf);

    const AreaModel model;
    std::printf("\n%-10s %10s %14s %16s\n", "BW ratio", "HM IPC",
                "IPC (norm.)", "IPC/cost (norm.)");

    double best_ratio = 0.0;
    double best_eff = 0.0;
    std::vector<std::tuple<double, double, double>> rows;
    for (double x : {0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.2,
                     1.4, 1.6}) {
        std::fprintf(stderr, "[bench] BW ratio %.2f\n", x);
        const auto runs = runSuite(makeBwLimitedConfig(x), scale);
        const double ipc = harmonicMeanIpc(runs);
        // NoC area scales with the square of channel bandwidth
        // (Sec. III-A); ratio 0.816 corresponds to 16B channels.
        MeshAreaSpec spec;
        spec.numMcs = 8;
        spec.channelBytes = 16.0 * x / 0.816;
        const double area = model.chipArea(model.meshArea(spec));
        const double eff = ipc / area;
        rows.emplace_back(x, ipc, eff);
        if (eff > best_eff) {
            best_eff = eff;
            best_ratio = x;
        }
    }
    const double eff_norm = best_eff;
    for (auto [x, ipc, eff] : rows) {
        std::printf("%-10.2f %10.1f %14.3f %16.3f\n", x, ipc,
                    ipc / inf_ipc, eff / eff_norm);
    }
    std::printf("\nper-cost optimum at BW ratio %.2f (paper: 0.7-0.8; "
                "0.816 = 2D mesh with 16-byte channels).\n",
                best_ratio);
    return 0;
}
