/**
 * @file
 * Chaos harness for the self-healing fleet (docs/fleet.md).
 *
 * Runs the same small sweep twice through an in-process FleetServer:
 * once clean (no cache, no faults) to establish ground truth, then
 * once with the chaos monkey armed — workers SIGKILL'd mid-run,
 * workers stalled so their heartbeats stop, fresh cache entries
 * corrupted — plus retries and periodic checkpoints enabled.  The
 * sweep must converge to complete results that are *numerically
 * identical* to the clean run, which proves end to end that
 * retry-from-checkpoint resumes are bit-identical and that integrity
 * eviction never serves damaged data.  A third pass corrupts a cache
 * entry by hand and resubmits, proving eviction + recompute.
 *
 * Usage: fleet_chaos [path-to-tenoc_server]
 * (defaults to the tenoc_server next to this binary)
 *
 * Writes BENCH_fleet_chaos.json; exits nonzero on any divergence.
 */

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include <unistd.h>

#include "fleet/server.hh"
#include "telemetry/json.hh"

namespace fs = std::filesystem;
using tenoc::fleet::FleetServer;
using tenoc::fleet::JobOutcome;
using tenoc::fleet::JobSpec;
using tenoc::fleet::ResultCache;
using tenoc::fleet::ServerOptions;
using tenoc::telemetry::JsonValue;

namespace
{

/** Result fields that must match between a clean and a chaos run. */
const char *const COMPARED_FIELDS[] = {
    "ipc",           "scalar_insts",      "core_cycles",
    "icnt_cycles",   "mem_cycles",        "avg_net_latency",
    "avg_total_latency", "mc_injection_rate", "dram_efficiency",
    "dram_row_hit_rate", "packets_ejected"};

std::string
siblingServer(const char *argv0)
{
    char buf[4096];
    const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    std::string self = argv0;
    if (n > 0) {
        buf[n] = '\0';
        self = buf;
    }
    const auto slash = self.rfind('/');
    const std::string dir =
        slash == std::string::npos ? "." : self.substr(0, slash);
    return dir + "/tenoc_server";
}

std::vector<JobSpec>
buildSweep()
{
    std::vector<JobSpec> jobs;
    for (const char *vd : {"4", "6"}) {
        for (const char *mhz : {"602", "700"}) {
            JobSpec j;
            j.workload = "MM";
            j.scale = 0.02;
            j.overrides.set("noc.vcDepth", std::string(vd));
            j.overrides.set("clk.icntMhz", std::string(mhz));
            j.name = std::string("vc") + vd + "-mhz" + mhz;
            jobs.push_back(std::move(j));
        }
    }
    return jobs;
}

bool
parseDoc(const std::string &json, JsonValue &doc)
{
    std::string err;
    return JsonValue::parse(json, doc, &err) && doc.isObject();
}

/** Compares the physics of two result documents field by field. */
bool
sameMetrics(const std::string &a_json, const std::string &b_json,
            std::string &why)
{
    JsonValue a, b;
    if (!parseDoc(a_json, a) || !parseDoc(b_json, b)) {
        why = "unparseable result document";
        return false;
    }
    for (const char *field : COMPARED_FIELDS) {
        const JsonValue *av = a.find(field);
        const JsonValue *bv = b.find(field);
        if (!av || !bv || !av->isNumber() || !bv->isNumber()) {
            why = std::string("missing field '") + field + "'";
            return false;
        }
        if (av->asNumber() != bv->asNumber()) {
            why = std::string(field) + ": " +
                  std::to_string(av->asNumber()) + " vs " +
                  std::to_string(bv->asNumber());
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string server_exe =
        argc > 1 ? argv[1] : siblingServer(argv[0]);
    if (!fs::exists(server_exe)) {
        std::cerr << "fleet_chaos: no tenoc_server at '" << server_exe
                  << "' (build it first, or pass its path)\n";
        return 2;
    }

    const std::string scratch = "fleet_chaos_scratch";
    std::error_code ec;
    fs::remove_all(scratch, ec);
    fs::create_directories(scratch, ec);

    const std::vector<JobSpec> jobs = buildSweep();
    bool pass = true;
    JsonValue report = JsonValue::makeObject();
    report.set("schema", JsonValue("tenoc-bench-fleet-chaos-v1"));
    report.set("jobs", JsonValue(static_cast<double>(jobs.size())));

    // ---- Phase 1: ground truth (no cache, no faults, no retries).
    std::cerr << "fleet_chaos: phase 1 -- clean baseline\n";
    std::map<std::string, std::string> truth;
    {
        ServerOptions o;
        o.workerExe = server_exe;
        o.resultsDir = scratch + "/base-results";
        o.retry.maxAttempts = 1;
        o.defaultTimeoutSeconds = 300;
        FleetServer server(o);
        for (const JobOutcome &out : server.runJobs(jobs)) {
            if (!out.ok) {
                std::cerr << "fleet_chaos: baseline job " << out.hash
                          << " failed: " << out.json << "\n";
                return 2;
            }
            truth[out.hash] = out.json;
        }
    }

    // ---- Phase 2: the same sweep under fire.  kill+stall sum to
    // probability 1, so every attempt is faulted until the per-job
    // budget (2) is spent — the convergence guarantee under test.
    std::cerr << "fleet_chaos: phase 2 -- chaos sweep\n";
    const std::string chaos_cache = scratch + "/chaos-cache";
    std::uint64_t kills = 0, stalls = 0, corruptions = 0;
    unsigned max_attempts_used = 0;
    {
        ServerOptions o;
        o.workerExe = server_exe;
        o.cacheDir = chaos_cache;
        o.resultsDir = scratch + "/chaos-results";
        o.defaultTimeoutSeconds = 300;
        o.retry.maxAttempts = 5;
        o.retry.backoffBaseSeconds = 0.05;
        o.retry.backoffMaxSeconds = 0.2;
        o.checkpointEveryCycles = 400;
        o.heartbeatTimeoutSeconds = 2;
        o.heartbeatIntervalCycles = 200;
        o.chaos.killRate = 0.6;
        o.chaos.stallRate = 0.4;
        o.chaos.corruptRate = 0.5;
        o.chaos.seed = 42;
        o.chaos.faultBudgetPerJob = 2;
        FleetServer server(o);
        for (const JobOutcome &out : server.runJobs(jobs)) {
            max_attempts_used =
                std::max(max_attempts_used, out.attempts);
            if (!out.ok) {
                std::cerr << "fleet_chaos: chaos sweep did not "
                             "converge: "
                          << out.json << "\n";
                pass = false;
                continue;
            }
            std::string why;
            if (!sameMetrics(truth[out.hash], out.json, why)) {
                std::cerr << "fleet_chaos: chaos result for "
                          << out.hash << " diverged (" << why
                          << ")\n";
                pass = false;
            }
        }
        kills = server.chaosMonkey().killsInjected();
        stalls = server.chaosMonkey().stallsInjected();
        corruptions = server.chaosMonkey().corruptionsInjected();
        std::cerr << "fleet_chaos: injected " << kills << " kills, "
                  << stalls << " stalls, " << corruptions
                  << " cache corruptions; deepest retry chain "
                  << max_attempts_used << " attempts\n";
        if (kills + stalls == 0) {
            std::cerr << "fleet_chaos: chaos injected no worker "
                         "faults -- harness is not testing anything\n";
            pass = false;
        }
    }

    // ---- Phase 2b: healing resubmit with chaos off.  Entries the
    // monkey corrupted are evicted and recomputed, the rest served
    // from cache; afterwards every entry is known-good, which phase 3
    // relies on.
    std::cerr << "fleet_chaos: phase 2b -- healing resubmit\n";
    {
        ServerOptions o;
        o.workerExe = server_exe;
        o.cacheDir = chaos_cache;
        o.resultsDir = scratch + "/heal-results";
        o.defaultTimeoutSeconds = 300;
        FleetServer server(o);
        for (const JobOutcome &out : server.runJobs(jobs)) {
            std::string why;
            if (!out.ok ||
                !sameMetrics(truth[out.hash], out.json, why)) {
                std::cerr << "fleet_chaos: healing result "
                          << out.hash << " wrong (" << why << ")\n";
                pass = false;
            }
        }
    }

    // ---- Phase 3: corrupt a cache entry by hand and resubmit with
    // chaos off.  The damaged entry must be evicted and recomputed
    // (cached=false), the rest served from cache, the numbers intact.
    std::cerr << "fleet_chaos: phase 3 -- cache corruption recovery\n";
    bool recomputed_ok = false;
    {
        const std::string victim = tenoc::fleet::jobHash(jobs.front());
        ResultCache cache(chaos_cache);
        if (!cache.corruptEntry(victim)) {
            std::cerr << "fleet_chaos: no cache entry to corrupt for "
                      << victim << "\n";
            pass = false;
        }
        ServerOptions o;
        o.workerExe = server_exe;
        o.cacheDir = chaos_cache;
        o.resultsDir = scratch + "/recover-results";
        o.defaultTimeoutSeconds = 300;
        FleetServer server(o);
        for (const JobOutcome &out : server.runJobs(jobs)) {
            std::string why;
            if (!out.ok ||
                !sameMetrics(truth[out.hash], out.json, why)) {
                std::cerr << "fleet_chaos: post-corruption result "
                          << out.hash << " wrong (" << why << ")\n";
                pass = false;
                continue;
            }
            if (out.hash == victim) {
                recomputed_ok = !out.cached;
                if (out.cached) {
                    std::cerr << "fleet_chaos: corrupt entry was "
                                 "served from cache\n";
                    pass = false;
                }
            } else if (!out.cached) {
                std::cerr << "fleet_chaos: intact entry " << out.hash
                          << " was not served from cache\n";
                pass = false;
            }
        }
    }

    report.set("kills_injected",
               JsonValue(static_cast<double>(kills)));
    report.set("stalls_injected",
               JsonValue(static_cast<double>(stalls)));
    report.set("cache_corruptions_injected",
               JsonValue(static_cast<double>(corruptions)));
    report.set("deepest_retry_chain",
               JsonValue(static_cast<double>(max_attempts_used)));
    report.set("corrupt_entry_recomputed", JsonValue(recomputed_ok));
    report.set("pass", JsonValue(pass));
    {
        std::ofstream os("BENCH_fleet_chaos.json");
        os << report.toString(2) << "\n";
    }

    std::cerr << (pass ? "fleet_chaos: PASS -- sweep converged to "
                         "bit-identical results under fire\n"
                       : "fleet_chaos: FAIL\n");
    return pass ? 0 : 1;
}
