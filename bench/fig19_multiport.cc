/**
 * @file
 * Figure 19: multi-port MC routers - an extra injection port, an
 * extra ejection port, and both - relative to the double-network
 * checkerboard.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace tenoc;
    using namespace tenoc::bench;

    banner("Figure 19 - multi-port MC routers",
           "injection ports help HH most (up to ~25%); ejection ports "
           "help a few DRAM-sorting-sensitive benchmarks; effects "
           "compose");
    const double scale = scaleFromArgs(argc, argv);

    const auto runs = suites({ConfigId::CP_CR_DOUBLE,
                              ConfigId::CP_CR_DOUBLE_2INJ,
                              ConfigId::CP_CR_DOUBLE_2EJ,
                              ConfigId::CP_CR_DOUBLE_2INJ2EJ}, scale);
    const auto &dbl = runs[0];
    const auto &inj = runs[1];
    const auto &ej = runs[2];
    const auto &both = runs[3];

    const auto spi = speedups(dbl, inj);
    const auto spe = speedups(dbl, ej);
    const auto spb = speedups(dbl, both);
    std::printf("\n%-6s %-6s %14s %14s %16s %12s\n", "bench", "class",
                "2 inj ports", "2 ej ports", "2 inj + 2 ej",
                "dram-eff d");
    for (std::size_t i = 0; i < dbl.size(); ++i) {
        std::printf("%-6s %-6s %14s %14s %16s %+11.2f\n",
                    dbl[i].abbr.c_str(),
                    trafficClassName(dbl[i].cls), pct(spi[i]).c_str(),
                    pct(spe[i]).c_str(), pct(spb[i]).c_str(),
                    ej[i].result.dramEfficiency -
                        dbl[i].result.dramEfficiency);
    }
    std::printf("%-6s %-6s %14s %14s %16s  (harmonic means)\n", "HM",
                "all", pct(harmonicMeanSpeedup(dbl, inj)).c_str(),
                pct(harmonicMeanSpeedup(dbl, ej)).c_str(),
                pct(harmonicMeanSpeedup(dbl, both)).c_str());
    std::printf("\npaper shape: extra injection ports relieve the "
                "reply bottleneck (stall fraction falls ~38.5%%); "
                "extra ejection ports mainly raise DRAM efficiency "
                "for TRA/FWT-like benchmarks and are not kept in the "
                "final design.\n");
    return 0;
}
