/**
 * @file
 * Ablation: address interleaving granularity across MCs.  The paper
 * (Sec. II) low-order interleaves every 256 bytes to reduce
 * hot-spots; this harness sweeps the granularity.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace tenoc;
    using namespace tenoc::bench;

    banner("Ablation - MC address interleaving granularity",
           "Sec. II: 256 B low-order interleaving reduces hot-spots");
    const double scale = scaleFromArgs(argc, argv, 0.5);

    const char *benches[] = {"SCP", "RD", "BFS", "MM"};
    std::printf("\n%-12s", "interleave");
    for (const char *b : benches)
        std::printf(" %10s", b);
    std::printf("   (IPC)\n");

    const unsigned grains[] = {64u, 256u, 1024u, 4096u};
    const std::size_t per = std::size(benches);
    const auto ipcs =
        sweepMap(std::size(grains) * per, [&](std::size_t i) {
            ChipParams p = makeConfig(ConfigId::BASELINE_TB_DOR);
            p.mc.interleaveBytes = grains[i / per];
            const auto prof =
                scaleWorkload(findWorkload(benches[i % per]), scale);
            return runWorkload(p, prof).ipc;
        });

    std::size_t idx = 0;
    for (unsigned bytes : grains) {
        std::printf("%-12u", bytes);
        for (std::size_t b = 0; b < per; ++b)
            std::printf(" %10.1f", ipcs[idx++]);
        std::printf("\n");
    }
    std::printf("\nexpected: coarse interleaving creates temporary "
                "MC hot-spots for streaming benchmarks; 256 B is a "
                "good operating point.\n");
    return 0;
}
