/**
 * @file
 * Ablation: VC buffer depth (Table III uses 8 flits per VC).  Open-
 * loop saturation throughput versus buffer depth on the baseline and
 * checkerboard networks.
 */

#include "common.hh"
#include "noc/openloop.hh"

int
main()
{
    using namespace tenoc;
    using namespace tenoc::bench;

    banner("Ablation - VC buffer depth (open loop)",
           "deeper buffers absorb bursts; Table III baseline is 8");

    struct Point
    {
        double lowLatency = 0.0;
        double saturation = 0.0;
    };
    const char *nets[] = {"TB-DOR", "CP-CR"};
    const unsigned depths[] = {2u, 4u, 8u, 16u, 32u};
    const std::size_t per_net = std::size(depths);
    const auto points =
        sweepMap(std::size(nets) * per_net, [&](std::size_t i) {
            ChipParams cp = makeConfig(
                i / per_net == 0 ? ConfigId::BASELINE_TB_DOR
                                 : ConfigId::CP_CR_4VC);
            OpenLoopParams p;
            p.net = cp.mesh;
            p.net.vcDepth = depths[i % per_net];
            p.injectionRate = 0.04;
            p.seed = 77;
            Point pt;
            pt.lowLatency = runOpenLoop(p).avgLatency;
            const auto sweep = sweepOpenLoop(p, 0.02, 0.01, 0.16);
            pt.saturation = 0.16;
            if (!sweep.empty() && sweep.back().saturated)
                pt.saturation = sweep.back().offeredLoad;
            return pt;
        });

    std::size_t idx = 0;
    for (const char *which : nets) {
        std::printf("\n--- %s ---\n", which);
        std::printf("%-8s %14s %16s\n", "depth", "lat @0.04",
                    "saturation rate");
        for (unsigned depth : depths) {
            const Point &pt = points[idx++];
            std::printf("%-8u %14.1f %16.3f\n", depth, pt.lowLatency,
                        pt.saturation);
        }
    }
    std::printf("\nexpected: latency at low load is depth-insensitive; "
                "saturation rate grows with depth and flattens near "
                "the Table III value of 8.\n");
    return 0;
}
