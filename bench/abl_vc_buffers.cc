/**
 * @file
 * Ablation: VC buffer depth (Table III uses 8 flits per VC).  Open-
 * loop saturation throughput versus buffer depth on the baseline and
 * checkerboard networks.
 */

#include "common.hh"
#include "noc/openloop.hh"

int
main()
{
    using namespace tenoc;
    using namespace tenoc::bench;

    banner("Ablation - VC buffer depth (open loop)",
           "deeper buffers absorb bursts; Table III baseline is 8");

    for (const char *which : {"TB-DOR", "CP-CR"}) {
        std::printf("\n--- %s ---\n", which);
        std::printf("%-8s %14s %16s\n", "depth", "lat @0.04",
                    "saturation rate");
        for (unsigned depth : {2u, 4u, 8u, 16u, 32u}) {
            ChipParams cp = makeConfig(
                std::string(which) == "TB-DOR"
                    ? ConfigId::BASELINE_TB_DOR : ConfigId::CP_CR_4VC);
            OpenLoopParams p;
            p.net = cp.mesh;
            p.net.vcDepth = depth;
            p.injectionRate = 0.04;
            p.seed = 77;
            const auto low = runOpenLoop(p);
            const auto sweep = sweepOpenLoop(p, 0.02, 0.01, 0.16);
            double sat = 0.16;
            if (!sweep.empty() && sweep.back().saturated)
                sat = sweep.back().offeredLoad;
            std::printf("%-8u %14.1f %16.3f\n", depth, low.avgLatency,
                        sat);
        }
    }
    std::printf("\nexpected: latency at low load is depth-insensitive; "
                "saturation rate grows with depth and flattens near "
                "the Table III value of 8.\n");
    return 0;
}
