/**
 * @file
 * Ablation: age-based (oldest-first) switch allocation.
 *
 * Sec. V-B attributes WP's slowdown under checkerboard placement to
 * global fairness and points at globally-synchronized-frames work as
 * the orthogonal fix.  This harness compares round-robin iSLIP
 * against oldest-first allocation on the placement-sensitive
 * benchmarks.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace tenoc;
    using namespace tenoc::bench;

    banner("Ablation - age-based switch allocation (global fairness)",
           "Sec. V-B: fairness issues slow a few compute cores; "
           "age-based allocation is the classic mitigation");
    const double scale = scaleFromArgs(argc, argv, 0.5);

    const char *benches[] = {"WP", "TRA", "BFS", "MUM", "SS", "MM"};
    std::printf("\n%-6s %12s %12s %10s\n", "bench", "RR iSLIP",
                "oldest-first", "delta");
    for (const char *b : benches) {
        const auto prof = scaleWorkload(findWorkload(b), scale);
        ChipParams rr = makeConfig(ConfigId::CP_DOR_2VC);
        ChipParams age = rr;
        age.mesh.agePriority = true;
        const auto r1 = runWorkload(rr, prof);
        const auto r2 = runWorkload(age, prof);
        std::printf("%-6s %12.1f %12.1f %9s\n", b, r1.ipc, r2.ipc,
                    pct(r2.ipc / r1.ipc).c_str());
    }
    std::printf("\nexpected: small deltas; oldest-first evens out "
                "per-core progress on placement-sensitive benchmarks "
                "at some cost in switch utilization.\n");
    return 0;
}
