/**
 * @file
 * Ablation: age-based (oldest-first) switch allocation.
 *
 * Sec. V-B attributes WP's slowdown under checkerboard placement to
 * global fairness and points at globally-synchronized-frames work as
 * the orthogonal fix.  This harness compares round-robin iSLIP
 * against oldest-first allocation on the placement-sensitive
 * benchmarks.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace tenoc;
    using namespace tenoc::bench;

    banner("Ablation - age-based switch allocation (global fairness)",
           "Sec. V-B: fairness issues slow a few compute cores; "
           "age-based allocation is the classic mitigation");
    const double scale = scaleFromArgs(argc, argv, 0.5);

    const char *benches[] = {"WP", "TRA", "BFS", "MUM", "SS", "MM"};
    const std::size_t per = std::size(benches);
    // Flatten (bench, allocator) pairs: even index = round-robin,
    // odd = oldest-first.
    const auto ipcs = sweepMap(per * 2, [&](std::size_t i) {
        const auto prof =
            scaleWorkload(findWorkload(benches[i / 2]), scale);
        ChipParams p = makeConfig(ConfigId::CP_DOR_2VC);
        if (i % 2 == 1)
            p.mesh.agePriority = true;
        return runWorkload(p, prof).ipc;
    });

    std::printf("\n%-6s %12s %12s %10s\n", "bench", "RR iSLIP",
                "oldest-first", "delta");
    for (std::size_t b = 0; b < per; ++b) {
        const double rr = ipcs[b * 2];
        const double age = ipcs[b * 2 + 1];
        std::printf("%-6s %12.1f %12.1f %9s\n", benches[b], rr, age,
                    pct(age / rr).c_str());
    }
    std::printf("\nexpected: small deltas; oldest-first evens out "
                "per-core progress on placement-sensitive benchmarks "
                "at some cost in switch utilization.\n");
    return 0;
}
