/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses.
 *
 * Every binary regenerates one figure or table from the paper's
 * evaluation section and prints the same rows/series the paper
 * reports.  Kernel lengths can be scaled with TENOC_SCALE (or argv[1])
 * for quick runs; shapes are stable from about 0.3 upward.
 */

#ifndef TENOC_BENCH_COMMON_HH
#define TENOC_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "accel/experiments.hh"
#include "area/area_model.hh"
#include "telemetry/telemetry.hh"

#include "sweep.hh"

namespace tenoc::bench
{

/** Prints the standard harness banner. */
inline void
banner(const char *what, const char *paper_says)
{
    std::printf("==============================================================\n");
    std::printf("tenoc reproduction: %s\n", what);
    std::printf("paper reference: %s\n", paper_says);
    std::printf("==============================================================\n");
}

/** Scale factor from argv[1] or TENOC_SCALE (default 1.0). */
inline double
scaleFromArgs(int argc, char **argv, double def = 1.0)
{
    if (argc > 1) {
        const double v = std::atof(argv[1]);
        if (v > 0.0)
            return v;
    }
    return envScale(def);
}

/** Runs the full suite under a config, with a progress note. */
inline std::vector<SuiteRun>
suite(ConfigId id, double scale)
{
    std::fprintf(stderr, "[bench] running suite: %s (scale %.2f)\n",
                 configName(id), scale);
    return runSuite(id, scale);
}

/**
 * Runs the full suite under several configs at once, fanning the
 * independent (config, workload) points over the sweep thread pool.
 * Results are grouped back per config in argument order and each group
 * is byte-identical to the sequential suite(id, scale) run (every
 * point seeds its own RNG; see bench/sweep.hh).
 */
inline std::vector<std::vector<SuiteRun>>
suites(const std::vector<ConfigId> &ids, double scale)
{
    const auto &profiles = workloadSuite();
    const std::size_t per = profiles.size();
    for (auto id : ids) {
        std::fprintf(stderr,
                     "[bench] running suite: %s (scale %.2f, "
                     "%u threads)\n",
                     configName(id), scale, sweepThreads());
    }
    const auto flat =
        sweepMap(ids.size() * per, [&](std::size_t i) {
            const ConfigId id = ids[i / per];
            const KernelProfile &profile = profiles[i % per];
            const KernelProfile scaled = scale == 1.0
                ? profile : scaleWorkload(profile, scale);
            SuiteRun run;
            run.abbr = profile.abbr;
            run.cls = profile.expectedClass;
            run.result = runWorkload(makeConfig(id), scaled);
            return run;
        });
    std::vector<std::vector<SuiteRun>> grouped(ids.size());
    for (std::size_t c = 0; c < ids.size(); ++c) {
        grouped[c].assign(flat.begin() + c * per,
                          flat.begin() + (c + 1) * per);
    }
    return grouped;
}

/** suites() for explicit ChipParams (ablations that tweak fields). */
inline std::vector<std::vector<SuiteRun>>
suites(const std::vector<ChipParams> &configs, double scale)
{
    const auto &profiles = workloadSuite();
    const std::size_t per = profiles.size();
    const auto flat =
        sweepMap(configs.size() * per, [&](std::size_t i) {
            const KernelProfile &profile = profiles[i % per];
            const KernelProfile scaled = scale == 1.0
                ? profile : scaleWorkload(profile, scale);
            SuiteRun run;
            run.abbr = profile.abbr;
            run.cls = profile.expectedClass;
            run.result = runWorkload(configs[i / per], scaled);
            return run;
        });
    std::vector<std::vector<SuiteRun>> grouped(configs.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        grouped[c].assign(flat.begin() + c * per,
                          flat.begin() + (c + 1) * per);
    }
    return grouped;
}

/** Formats a ratio as a signed percentage. */
inline std::string
pct(double ratio)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.1f%%", 100.0 * (ratio - 1.0));
    return buf;
}

/** Prints one per-benchmark speedup series with class annotations. */
inline void
printSpeedupSeries(const char *label,
                   const std::vector<SuiteRun> &base,
                   const std::vector<SuiteRun> &test)
{
    std::printf("\n%-6s", "bench");
    std::printf("%-5s %10s\n", "class", label);
    const auto sp = speedups(base, test);
    for (std::size_t i = 0; i < base.size(); ++i) {
        std::printf("%-6s %-5s %10s\n", base[i].abbr.c_str(),
                    trafficClassName(base[i].cls), pct(sp[i]).c_str());
    }
    std::printf("%-6s %-5s %10s   (harmonic mean)\n", "HM", "all",
                pct(harmonicMeanSpeedup(base, test)).c_str());
}

/** Per-class harmonic-mean speedup line. */
inline void
printClassMeans(const std::vector<SuiteRun> &base,
                const std::vector<SuiteRun> &test)
{
    for (auto cls : {TrafficClass::LL, TrafficClass::LH,
                     TrafficClass::HH}) {
        std::vector<double> v;
        for (std::size_t i = 0; i < base.size(); ++i)
            if (base[i].cls == cls)
                v.push_back(test[i].result.ipc / base[i].result.ipc);
        std::printf("  HM speedup %s: %s\n", trafficClassName(cls),
                    pct(harmonicMean(v)).c_str());
    }
}

/** Chip area (mm^2) for a named configuration. */
inline double
chipAreaFor(ConfigId id)
{
    const AreaModel model;
    return model.chipArea(model.meshArea(areaSpecFor(id)));
}

/**
 * Runs one instrumented workload and writes any telemetry outputs the
 * user requested (--stats-json / --stats-csv / --interval-csv /
 * --trace; parse them out of argv with parseTelemetryFlags *before*
 * reading positional arguments).  No-op when no flag was given, so
 * harnesses can call this unconditionally after their normal output.
 */
inline void
runTelemetryWorkload(const telemetry::TelemetryConfig &cfg, ConfigId id,
                     double scale, const std::string &workload = "MM")
{
    if (!cfg.any())
        return;
    std::fprintf(stderr,
                 "[bench] telemetry run: %s on %s (scale %.2f)\n",
                 workload.c_str(), configName(id), scale);
    telemetry::TelemetryHub hub(cfg);
    const auto prof = scaleWorkload(findWorkload(workload), scale);
    runWorkload(makeConfig(id), prof, &hub);
}

} // namespace tenoc::bench

#endif // TENOC_BENCH_COMMON_HH
