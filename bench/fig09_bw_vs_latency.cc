/**
 * @file
 * Figure 9 (and Figure 10): scaling network bandwidth (2x channels)
 * versus reducing router latency (1-cycle routers), plus the network
 * latency ratio the latency optimization actually delivers.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace tenoc;
    using namespace tenoc::bench;

    banner("Figure 9/10 - bandwidth vs latency scaling",
           "2x channels: +27% HM; 1-cycle routers: +2.3% HM despite "
           "up to 2x lower network latency");
    const auto telemetry_cfg =
        telemetry::parseTelemetryFlags(argc, argv);
    const double scale = scaleFromArgs(argc, argv);

    const auto runs = suites({ConfigId::BASELINE_TB_DOR,
                              ConfigId::TB_DOR_2X,
                              ConfigId::TB_DOR_1CYC}, scale);
    const auto &base = runs[0];
    const auto &two = runs[1];
    const auto &fast = runs[2];

    const auto sp2 = speedups(base, two);
    const auto spf = speedups(base, fast);

    std::printf("\n--- Fig. 9: speedups over the 16B / 4-stage "
                "baseline ---\n");
    std::printf("%-6s %-6s %14s %16s\n", "bench", "class",
                "2x bandwidth", "1-cycle router");
    for (std::size_t i = 0; i < base.size(); ++i) {
        std::printf("%-6s %-6s %14s %16s\n", base[i].abbr.c_str(),
                    trafficClassName(base[i].cls), pct(sp2[i]).c_str(),
                    pct(spf[i]).c_str());
    }
    std::printf("%-6s %-6s %14s %16s  (harmonic means; paper: +27%% "
                "and +2.3%%)\n", "HM", "all",
                pct(harmonicMeanSpeedup(base, two)).c_str(),
                pct(harmonicMeanSpeedup(base, fast)).c_str());

    std::printf("\n--- Fig. 10: network latency ratio "
                "(1-cycle / 4-cycle routers) ---\n");
    std::printf("%-6s %-6s %12s %12s %8s\n", "bench", "class",
                "lat 4-cyc", "lat 1-cyc", "ratio");
    for (std::size_t i = 0; i < base.size(); ++i) {
        const double l4 = base[i].result.avgNetLatency;
        const double l1 = fast[i].result.avgNetLatency;
        std::printf("%-6s %-6s %12.1f %12.1f %8.2f\n",
                    base[i].abbr.c_str(),
                    trafficClassName(base[i].cls), l4, l1,
                    l4 > 0.0 ? l1 / l4 : 0.0);
    }
    std::printf("\npaper shape: latency drops to 0.5-0.9x but "
                "application throughput barely moves; bandwidth is "
                "what matters for these workloads.\n");
    runTelemetryWorkload(telemetry_cfg, ConfigId::BASELINE_TB_DOR,
                         scale);
    return 0;
}
