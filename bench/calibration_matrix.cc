/**
 * @file
 * Calibration matrix: the whole Table I suite across every major
 * configuration, with per-benchmark speedups, classification checks,
 * and the paper's headline harmonic means.  This is the tool used to
 * calibrate `src/gpu/workloads.cc`; run it after touching workload
 * parameters, the DRAM model, or the router.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace tenoc;
    using namespace tenoc::bench;

    banner("Calibration matrix - all benchmarks x all designs",
           "targets: perfect +36%, 2x +27%, CP +13.2%, CR -1.1%, "
           "combined +17%, IPC/mm^2 +25.4%");
    const double scale = scaleFromArgs(argc, argv, 0.5);

    const auto runs = suites({ConfigId::BASELINE_TB_DOR,
                              ConfigId::PERFECT,
                              ConfigId::TB_DOR_2X,
                              ConfigId::CP_DOR_2VC,
                              ConfigId::CP_CR_DOUBLE,
                              ConfigId::THROUGHPUT_EFFECTIVE,
                              ConfigId::CP_CR_2INJ_SINGLE}, scale);
    const auto &base = runs[0];
    const auto &perf = runs[1];
    const auto &two = runs[2];
    const auto &cp = runs[3];
    const auto &dbl = runs[4];
    const auto &thr = runs[5];
    const auto &sgl = runs[6];

    auto sp = [](const SuiteRun &b, const SuiteRun &t) {
        return 100.0 * (t.result.ipc / b.result.ipc - 1.0);
    };

    std::printf("\n%-5s %-4s %8s %7s %7s %7s %7s %7s %7s %6s %6s\n",
                "bench", "cls", "baseIPC", "perf%", "2x%", "cp%",
                "dbl%", "thr%", "2Psgl%", "acc", "stall%");
    unsigned misclassified = 0;
    for (std::size_t i = 0; i < base.size(); ++i) {
        const auto cls = classify(
            perf[i].result.ipc / base[i].result.ipc,
            perf[i].result.acceptedBytesPerNode);
        misclassified += (cls != base[i].cls);
        std::printf("%-5s %-4s %8.1f %7.1f %7.1f %7.1f %7.1f %7.1f "
                    "%7.1f %6.2f %6.1f%s\n",
                    base[i].abbr.c_str(),
                    trafficClassName(base[i].cls), base[i].result.ipc,
                    sp(base[i], perf[i]), sp(base[i], two[i]),
                    sp(base[i], cp[i]), sp(base[i], dbl[i]),
                    sp(base[i], thr[i]), sp(base[i], sgl[i]),
                    perf[i].result.acceptedBytesPerNode,
                    100.0 * base[i].result.mcStallFractionMean,
                    cls != base[i].cls ? "  <-class mismatch" : "");
    }

    std::printf("\nharmonic-mean speedups vs baseline:\n");
    std::printf("  perfect NoC     %8s   (paper +36%%)\n",
                pct(harmonicMeanSpeedup(base, perf)).c_str());
    std::printf("  2x bandwidth    %8s   (paper +27%%)\n",
                pct(harmonicMeanSpeedup(base, two)).c_str());
    std::printf("  CP placement    %8s   (paper +13.2%%)\n",
                pct(harmonicMeanSpeedup(base, cp)).c_str());
    std::printf("  double network  %8s   (paper ~0%% vs single; "
                "see DESIGN.md 5)\n",
                pct(harmonicMeanSpeedup(base, dbl)).c_str());
    std::printf("  thr-eff (paper) %8s   (paper +17%%)\n",
                pct(harmonicMeanSpeedup(base, thr)).c_str());
    std::printf("  CP+CR+2P single %8s\n",
                pct(harmonicMeanSpeedup(base, sgl)).c_str());
    std::printf("  class mismatches: %u / 31 (target 0)\n",
                misclassified);

    // Headline throughput-effectiveness.
    const double base_eff = throughputEffectiveness(
        harmonicMeanIpc(base), chipAreaFor(ConfigId::BASELINE_TB_DOR));
    const double sgl_eff = throughputEffectiveness(
        harmonicMeanIpc(sgl), chipAreaFor(ConfigId::CP_CR_2INJ_SINGLE));
    std::printf("  IPC/mm^2 (CP+CR+2P single) %s  (paper headline "
                "+25.4%%)\n", pct(sgl_eff / base_eff).c_str());
    return 0;
}
