/**
 * @file
 * Figure 21: open-loop latency versus offered load for the
 * many-to-few-to-many pattern (1-flit requests from 28 compute nodes,
 * 4-flit replies from 8 MCs), uniform-random and hotspot variants,
 * across TB-DOR, CP-DOR, CP-CR, CP-CR-2P, and 2x-TB-DOR.
 */

#include "common.hh"
#include "noc/openloop.hh"

namespace
{

using namespace tenoc;

MeshNetworkParams
netFor(ConfigId id)
{
    // The paper's open-loop runs use a single network with two
    // logical (request/reply) networks even for the 2P data point.
    ChipParams p = makeConfig(id);
    MeshNetworkParams net = p.mesh;
    return net;
}

struct Curve
{
    const char *label;
    MeshNetworkParams net;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace tenoc;
    using namespace tenoc::bench;

    banner("Figure 21 - open-loop latency vs offered load",
           "saturation: TB-DOR < CP-DOR ~ CP-CR < CP-CR-2P < 2x; "
           "hotspot amplifies the gap");
    const double scale = scaleFromArgs(argc, argv);
    (void)scale; // open-loop runs have fixed warmup/measure windows

    MeshNetworkParams two_p = netFor(ConfigId::CP_CR_4VC);
    two_p.mcInjPorts = 2;
    const Curve curves[] = {
        {"TB-DOR", netFor(ConfigId::BASELINE_TB_DOR)},
        {"CP-DOR", netFor(ConfigId::CP_DOR_2VC)},
        {"CP-CR", netFor(ConfigId::CP_CR_4VC)},
        {"CP-CR-2P", two_p},
        {"2x-TB-DOR", netFor(ConfigId::TB_DOR_2X)},
    };

    // Every (hotspot, rate, curve) point is an independent open-loop
    // simulation; flatten them and fan out over the sweep pool, then
    // print in the original order.
    const double hotspots[] = {0.0, 0.2};
    std::vector<double> rates;
    for (double rate = 0.01; rate <= 0.1301; rate += 0.01)
        rates.push_back(rate);
    const std::size_t n_curves = std::size(curves);
    const std::size_t per_hotspot = rates.size() * n_curves;
    const auto results =
        sweepMap(std::size(hotspots) * per_hotspot, [&](std::size_t i) {
            const double hotspot = hotspots[i / per_hotspot];
            const std::size_t j = i % per_hotspot;
            const auto &c = curves[j % n_curves];
            OpenLoopParams p;
            p.net = c.net;
            p.injectionRate = rates[j / n_curves];
            p.hotspotFraction = hotspot;
            p.seed = 2024;
            // Packet sizes in flits follow the channel width
            // (8-byte requests, 64-byte replies).
            p.requestFlits = flitsForBytes(8, p.net.flitBytes);
            p.replyFlits = flitsForBytes(64, p.net.flitBytes);
            return runOpenLoop(p);
        });

    std::size_t idx = 0;
    for (double hotspot : hotspots) {
        std::printf("\n--- %s many-to-few-to-many (%s) ---\n",
                    hotspot == 0.0 ? "Uniform random" : "Hotspot",
                    hotspot == 0.0 ? "Fig. 21(a)"
                                   : "Fig. 21(b): 20% to one MC");
        std::printf("%-10s | %s\n", "rate",
                    "average packet latency per configuration");
        std::printf("%-10s |", "");
        for (const auto &c : curves)
            std::printf(" %12s", c.label);
        std::printf("\n");
        for (double rate : rates) {
            std::printf("%-10.3f |", rate);
            for (std::size_t ci = 0; ci < n_curves; ++ci) {
                const auto &r = results[idx++];
                if (r.saturated)
                    std::printf(" %12s", "sat");
                else
                    std::printf(" %12.1f", r.avgLatency);
            }
            std::printf("\n");
        }
    }
    std::printf("\npaper shape: throughput is limited by the "
                "many-to-few-to-many bottleneck; staggered placement "
                "helps uniform traffic most, extra injection ports "
                "help hotspot traffic most.\n");
    return 0;
}
