/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: cycles
 * per second for routers, the mesh, the DRAM channel, and a full
 * closed-loop chip.  Useful when optimizing the simulator.
 */

#include <benchmark/benchmark.h>

#include "accel/experiments.hh"
#include "noc/mesh_network.hh"

namespace
{

using namespace tenoc;

void
BM_MeshCycleIdle(benchmark::State &state)
{
    MeshNetworkParams p;
    MeshNetwork net(p);
    Cycle now = 0;
    for (auto _ : state)
        net.cycle(now++);
    state.SetItemsProcessed(static_cast<std::int64_t>(now));
}
BENCHMARK(BM_MeshCycleIdle);

void
BM_MeshCycleLoaded(benchmark::State &state)
{
    MeshNetworkParams p;
    MeshNetwork net(p);
    struct Sink : PacketSink
    {
        bool tryReserve(const Packet &) override { return true; }
        void deliver(PacketPtr, Cycle) override {}
    } sink;
    const auto &topo = net.topology();
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        net.setSink(n, &sink);
    Rng rng(1);
    Cycle now = 0;
    for (auto _ : state) {
        for (NodeId core : topo.computeNodes()) {
            if (rng.nextBool(0.05) && net.canInject(core, 0)) {
                auto pkt = std::make_shared<Packet>();
                pkt->src = core;
                pkt->dst = rng.pick(topo.mcNodes());
                pkt->sizeFlits = 1;
                pkt->sizeBytes = 16;
                net.inject(std::move(pkt), now);
            }
        }
        net.cycle(now++);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(now));
}
BENCHMARK(BM_MeshCycleLoaded);

void
BM_DramChannelStream(benchmark::State &state)
{
    DramChannelParams p;
    DramChannel ch(p);
    Cycle now = 0;
    Addr addr = 0;
    for (auto _ : state) {
        if (ch.canAccept()) {
            DramRequest req;
            req.localAddr = addr;
            addr += 64;
            ch.push(std::move(req), now);
        }
        ch.cycle(now++);
        ch.popCompleted();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(now));
}
BENCHMARK(BM_DramChannelStream);

void
BM_ClosedLoopChip(benchmark::State &state)
{
    // Whole-chip simulation rate (interconnect cycles per second).
    for (auto _ : state) {
        const auto prof = scaleWorkload(findWorkload("MM"), 0.02);
        const auto r =
            runWorkload(makeConfig(ConfigId::BASELINE_TB_DOR), prof);
        benchmark::DoNotOptimize(r.ipc);
        state.SetItemsProcessed(
            static_cast<std::int64_t>(r.icntCycles));
    }
}
BENCHMARK(BM_ClosedLoopChip)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
