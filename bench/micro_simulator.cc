/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: cycles
 * per second for routers, the mesh, the DRAM channel, and a full
 * closed-loop chip.  Useful when optimizing the simulator.
 *
 * Also the telemetry harness: every run times one instrumented
 * closed-loop chip and writes BENCH_telemetry.json (cycles simulated,
 * wall-clock seconds, simulated cycles per second).  The telemetry
 * flags (--stats-json / --stats-csv / --interval-csv / --trace, see
 * docs/telemetry.md) attach sinks to that run; when any is given the
 * google-benchmark suite is skipped so the telemetry files are the
 * run's product.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "accel/experiments.hh"
#include "common/config.hh"
#include "noc/mesh_network.hh"
#include "telemetry/json.hh"
#include "telemetry/telemetry.hh"

namespace
{

using namespace tenoc;

void
BM_MeshCycleIdle(benchmark::State &state)
{
    MeshNetworkParams p;
    MeshNetwork net(p);
    Cycle now = 0;
    for (auto _ : state)
        net.cycle(now++);
    state.SetItemsProcessed(static_cast<std::int64_t>(now));
}
BENCHMARK(BM_MeshCycleIdle);

void
BM_MeshCycleLoaded(benchmark::State &state)
{
    MeshNetworkParams p;
    MeshNetwork net(p);
    struct Sink : PacketSink
    {
        bool tryReserve(const Packet &) override { return true; }
        void deliver(PacketPtr, Cycle) override {}
    } sink;
    const auto &topo = net.topology();
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        net.setSink(n, &sink);
    Rng rng(1);
    Cycle now = 0;
    for (auto _ : state) {
        for (NodeId core : topo.computeNodes()) {
            if (rng.nextBool(0.05) && net.canInject(core, 0)) {
                auto pkt = makePacket();
                pkt->src = core;
                pkt->dst = rng.pick(topo.mcNodes());
                pkt->sizeFlits = 1;
                pkt->sizeBytes = 16;
                net.inject(std::move(pkt), now);
            }
        }
        net.cycle(now++);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(now));
}
BENCHMARK(BM_MeshCycleLoaded);

void
BM_DramChannelStream(benchmark::State &state)
{
    DramChannelParams p;
    DramChannel ch(p);
    Cycle now = 0;
    Addr addr = 0;
    for (auto _ : state) {
        if (ch.canAccept()) {
            DramRequest req;
            req.localAddr = addr;
            addr += 64;
            ch.push(std::move(req), now);
        }
        ch.cycle(now++);
        ch.popCompleted();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(now));
}
BENCHMARK(BM_DramChannelStream);

void
BM_ClosedLoopChip(benchmark::State &state)
{
    // Whole-chip simulation rate (interconnect cycles per second).
    for (auto _ : state) {
        const auto prof = scaleWorkload(findWorkload("MM"), 0.02);
        const auto r =
            runWorkload(makeConfig(ConfigId::BASELINE_TB_DOR), prof);
        benchmark::DoNotOptimize(r.ipc);
        state.SetItemsProcessed(
            static_cast<std::int64_t>(r.icntCycles));
    }
}
BENCHMARK(BM_ClosedLoopChip)->Unit(benchmark::kMillisecond);

/**
 * Pulls `--name value` / `--name=value` out of argv (benchmark's
 * Initialize rejects unknown arguments, so ours must go first).
 * @return true and sets `value` if the flag was present.
 */
bool
extractFlag(int &argc, char **argv, const char *name,
            std::string &value)
{
    const std::string eq = std::string("--") + name + "=";
    const std::string bare = std::string("--") + name;
    bool found = false;
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind(eq, 0) == 0) {
            value = arg.substr(eq.size());
            found = true;
            continue;
        }
        if (arg == bare && i + 1 < argc) {
            value = argv[++i];
            found = true;
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    argv[argc] = nullptr;
    return found;
}

/** Times one instrumented chip run and writes BENCH_telemetry.json.
 *  @return false if the run hit its cycle cap (likely deadlock; the
 *  chip printed a diagnostic snapshot). */
bool
runTelemetryHarness(telemetry::TelemetryConfig cfg,
                    const RunOptions &opts)
{
    const char *workload = "MM";
    const double scale = envScale(0.05);

    // Canonical hash of this run's effective configuration, echoed
    // into the stats-JSON header and interval-CSV metadata so sweep
    // tooling can content-address the outputs (docs/fleet.md).
    Config id_cfg;
    id_cfg.set("base", "baseline");
    id_cfg.set("workload", workload);
    id_cfg.set("workload.scale", scale);
    cfg.configHash = id_cfg.canonicalHashHex();

    telemetry::TelemetryHub hub(cfg);
    const auto prof = scaleWorkload(findWorkload(workload), scale);

    const auto t0 = std::chrono::steady_clock::now();
    const auto result = runWorkload(
        makeConfig(ConfigId::BASELINE_TB_DOR), prof, &hub, opts);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall =
        std::chrono::duration<double>(t1 - t0).count();
    const double rate = wall > 0.0
        ? static_cast<double>(result.icntCycles) / wall : 0.0;

    telemetry::JsonValue doc =
        telemetry::JsonValue::makeObject();
    doc.set("workload", telemetry::JsonValue(workload));
    doc.set("scale", telemetry::JsonValue(scale));
    doc.set("icnt_cycles", telemetry::JsonValue(
        static_cast<double>(result.icntCycles)));
    doc.set("wall_seconds", telemetry::JsonValue(wall));
    doc.set("sim_cycles_per_second", telemetry::JsonValue(rate));
    doc.set("ipc", telemetry::JsonValue(result.ipc));
    std::ofstream os("BENCH_telemetry.json");
    doc.write(os);
    os << "\n";

    std::fprintf(stderr,
                 "[micro_simulator] %s scale %.2f: %llu icnt cycles "
                 "in %.2fs (%.0f cycles/s)\n",
                 workload, scale,
                 static_cast<unsigned long long>(result.icntCycles),
                 wall, rate);
    if (result.timedOut) {
        std::fprintf(stderr,
                     "[micro_simulator] ERROR: run hit the icnt cycle "
                     "cap before completing — see the diagnostic "
                     "snapshot above\n");
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    // Telemetry flags must come out of argv before google-benchmark
    // sees them (it rejects unknown arguments).
    const auto cfg = telemetry::parseTelemetryFlags(argc, argv);

    // Checkpoint/restore flags (docs/fleet.md): --checkpoint-at N
    // --checkpoint-out FILE snapshots the harness run mid-flight;
    // --restore FILE resumes from a snapshot.
    RunOptions opts;
    std::string value;
    bool ckpt_flags = false;
    if (extractFlag(argc, argv, "checkpoint-at", value)) {
        opts.checkpointAt =
            static_cast<Cycle>(std::strtoull(value.c_str(), nullptr,
                                             10));
        ckpt_flags = true;
    }
    if (extractFlag(argc, argv, "checkpoint-out", value)) {
        opts.checkpointOut = value;
        ckpt_flags = true;
    }
    if (extractFlag(argc, argv, "restore", value)) {
        opts.restoreFrom = value;
        ckpt_flags = true;
    }

    if (!runTelemetryHarness(cfg, opts))
        return 2; // cycle-cap timeout: fail fast instead of reporting
    if (cfg.any() || ckpt_flags)
        return 0; // harness-only run; skip the benchmark suite

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
