/**
 * @file
 * Sweep orchestrator daemon (docs/fleet.md).
 *
 * Three front ends over the same FleetServer:
 *   tenoc_server --spec FILE        run one spec batch and exit
 *   tenoc_server --spool DIR        watch DIR for spec files (--once
 *                                   drains what is present and exits)
 *   tenoc_server --listen SOCK      Unix-socket line protocol
 *
 * Worker processes are this same binary re-exec'd with --worker; keep
 * that dispatch first so a worker never parses server flags.
 *
 * Setting TENOC_CHAOS (e.g. "kill=0.5,stall=0.25,corrupt=0.3,seed=7")
 * arms deterministic fault injection — see docs/fleet.md, "Chaos
 * mode".
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "fleet/chaos.hh"
#include "fleet/server.hh"
#include "fleet/worker.hh"

namespace
{

int
usage()
{
    std::cerr <<
        "usage: tenoc_server (--spec FILE | --spool DIR [--once] |"
        " --listen SOCK)\n"
        "                    [--workers N] [--cache DIR]"
        " [--results DIR] [--timeout SECONDS]\n"
        "                    [--retries N] [--backoff SECONDS]"
        " [--backoff-max SECONDS]\n"
        "                    [--checkpoint-every CYCLES]"
        " [--heartbeat-timeout SECONDS]\n"
        "                    [--hb-cycles CYCLES] [--rlimit-as-mb MB]"
        " [--rlimit-cpu SECONDS]\n"
        "                    [--max-queue N] [--journal FILE]\n"
        "env: TENOC_CHAOS=\"kill=P,stall=P,corrupt=P,drop=P,seed=S,"
        "budget=N\"\n";
    return 2;
}

/** The path the kernel will exec for worker children. */
std::string
selfExe(const char *argv0)
{
    char buf[4096];
    const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

bool
needValue(int argc, char **argv, int &i, std::string &out)
{
    if (i + 1 >= argc) {
        std::cerr << "tenoc_server: " << argv[i] << " needs a value\n";
        return false;
    }
    out = argv[++i];
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tenoc::fleet;

    if (argc > 1 && std::strcmp(argv[1], "--worker") == 0) {
        WorkerOptions wopts;
        for (int i = 2; i < argc; ++i) {
            std::string v;
            if (std::strcmp(argv[i], "--job") == 0 &&
                needValue(argc, argv, i, v)) {
                wopts.jobFile = v;
            } else if (std::strcmp(argv[i], "--out") == 0 &&
                       needValue(argc, argv, i, v)) {
                wopts.outFile = v;
            } else if (std::strcmp(argv[i], "--watchdog-out") == 0 &&
                       needValue(argc, argv, i, v)) {
                wopts.watchdogPath = v;
            } else if (std::strcmp(argv[i], "--status-fd") == 0 &&
                       needValue(argc, argv, i, v)) {
                wopts.statusFd = std::atoi(v.c_str());
            } else if (std::strcmp(argv[i], "--hb-cycles") == 0 &&
                       needValue(argc, argv, i, v)) {
                wopts.heartbeatCycles =
                    static_cast<tenoc::Cycle>(std::atoll(v.c_str()));
            } else if (std::strcmp(argv[i], "--checkpoint-every") == 0 &&
                       needValue(argc, argv, i, v)) {
                wopts.checkpointEvery =
                    static_cast<tenoc::Cycle>(std::atoll(v.c_str()));
            } else if (std::strcmp(argv[i], "--checkpoint-file") == 0 &&
                       needValue(argc, argv, i, v)) {
                wopts.checkpointFile = v;
            } else if (std::strcmp(argv[i], "--chaos-kill-at") == 0 &&
                       needValue(argc, argv, i, v)) {
                wopts.chaosKillAtCycle =
                    static_cast<tenoc::Cycle>(std::atoll(v.c_str()));
            } else if (std::strcmp(argv[i], "--chaos-stall-at") == 0 &&
                       needValue(argc, argv, i, v)) {
                wopts.chaosStallAtCycle =
                    static_cast<tenoc::Cycle>(std::atoll(v.c_str()));
            } else {
                return usage();
            }
        }
        if (wopts.jobFile.empty() || wopts.outFile.empty())
            return usage();
        return runWorkerJob(wopts);
    }

    ServerOptions opts;
    opts.workerExe = selfExe(argv[0]);
    std::string chaos_err;
    if (!parseChaosSpec(std::getenv("TENOC_CHAOS"), opts.chaos,
                        &chaos_err)) {
        std::cerr << "tenoc_server: bad TENOC_CHAOS: " << chaos_err
                  << "\n";
        return 2;
    }

    std::string spec, spool, sock;
    bool once = false;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (std::strcmp(argv[i], "--spec") == 0 &&
            needValue(argc, argv, i, v)) {
            spec = v;
        } else if (std::strcmp(argv[i], "--spool") == 0 &&
                   needValue(argc, argv, i, v)) {
            spool = v;
        } else if (std::strcmp(argv[i], "--listen") == 0 &&
                   needValue(argc, argv, i, v)) {
            sock = v;
        } else if (std::strcmp(argv[i], "--once") == 0) {
            once = true;
        } else if (std::strcmp(argv[i], "--workers") == 0 &&
                   needValue(argc, argv, i, v)) {
            const long n = std::atol(v.c_str());
            if (n < 1)
                return usage();
            opts.workers = static_cast<unsigned>(n);
        } else if (std::strcmp(argv[i], "--cache") == 0 &&
                   needValue(argc, argv, i, v)) {
            opts.cacheDir = v;
        } else if (std::strcmp(argv[i], "--results") == 0 &&
                   needValue(argc, argv, i, v)) {
            opts.resultsDir = v;
        } else if (std::strcmp(argv[i], "--timeout") == 0 &&
                   needValue(argc, argv, i, v)) {
            const long n = std::atol(v.c_str());
            if (n < 0)
                return usage();
            opts.defaultTimeoutSeconds = static_cast<unsigned>(n);
        } else if (std::strcmp(argv[i], "--retries") == 0 &&
                   needValue(argc, argv, i, v)) {
            const long n = std::atol(v.c_str());
            if (n < 1)
                return usage();
            opts.retry.maxAttempts = static_cast<unsigned>(n);
        } else if (std::strcmp(argv[i], "--backoff") == 0 &&
                   needValue(argc, argv, i, v)) {
            opts.retry.backoffBaseSeconds = std::atof(v.c_str());
            if (opts.retry.backoffBaseSeconds < 0.0)
                return usage();
        } else if (std::strcmp(argv[i], "--backoff-max") == 0 &&
                   needValue(argc, argv, i, v)) {
            opts.retry.backoffMaxSeconds = std::atof(v.c_str());
            if (opts.retry.backoffMaxSeconds < 0.0)
                return usage();
        } else if (std::strcmp(argv[i], "--checkpoint-every") == 0 &&
                   needValue(argc, argv, i, v)) {
            opts.checkpointEveryCycles =
                static_cast<tenoc::Cycle>(std::atoll(v.c_str()));
        } else if (std::strcmp(argv[i], "--heartbeat-timeout") == 0 &&
                   needValue(argc, argv, i, v)) {
            const long n = std::atol(v.c_str());
            if (n < 0)
                return usage();
            opts.heartbeatTimeoutSeconds = static_cast<unsigned>(n);
        } else if (std::strcmp(argv[i], "--hb-cycles") == 0 &&
                   needValue(argc, argv, i, v)) {
            const long long n = std::atoll(v.c_str());
            if (n < 1)
                return usage();
            opts.heartbeatIntervalCycles =
                static_cast<tenoc::Cycle>(n);
        } else if (std::strcmp(argv[i], "--rlimit-as-mb") == 0 &&
                   needValue(argc, argv, i, v)) {
            opts.rlimitAsMb =
                static_cast<unsigned>(std::atol(v.c_str()));
        } else if (std::strcmp(argv[i], "--rlimit-cpu") == 0 &&
                   needValue(argc, argv, i, v)) {
            opts.rlimitCpuSeconds =
                static_cast<unsigned>(std::atol(v.c_str()));
        } else if (std::strcmp(argv[i], "--max-queue") == 0 &&
                   needValue(argc, argv, i, v)) {
            opts.maxQueueDepth =
                static_cast<std::size_t>(std::atol(v.c_str()));
        } else if (std::strcmp(argv[i], "--journal") == 0 &&
                   needValue(argc, argv, i, v)) {
            opts.journalPath = v;
        } else {
            return usage();
        }
    }

    const int modes = (spec.empty() ? 0 : 1) + (spool.empty() ? 0 : 1) +
                      (sock.empty() ? 0 : 1);
    if (modes != 1)
        return usage();

    FleetServer server(opts);
    if (!spec.empty())
        return server.runSpecFile(spec);
    if (!spool.empty())
        return server.runSpool(spool, once);
    return server.runListen(sock);
}
