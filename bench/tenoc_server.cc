/**
 * @file
 * Sweep orchestrator daemon (docs/fleet.md).
 *
 * Three front ends over the same FleetServer:
 *   tenoc_server --spec FILE        run one spec batch and exit
 *   tenoc_server --spool DIR        watch DIR for spec files (--once
 *                                   drains what is present and exits)
 *   tenoc_server --listen SOCK      Unix-socket line protocol
 *
 * Worker processes are this same binary re-exec'd with --worker; keep
 * that dispatch first so a worker never parses server flags.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "fleet/server.hh"
#include "fleet/worker.hh"

namespace
{

int
usage()
{
    std::cerr <<
        "usage: tenoc_server (--spec FILE | --spool DIR [--once] |"
        " --listen SOCK)\n"
        "                    [--workers N] [--cache DIR]"
        " [--results DIR] [--timeout SECONDS]\n";
    return 2;
}

/** The path the kernel will exec for worker children. */
std::string
selfExe(const char *argv0)
{
    char buf[4096];
    const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

bool
needValue(int argc, char **argv, int &i, std::string &out)
{
    if (i + 1 >= argc) {
        std::cerr << "tenoc_server: " << argv[i] << " needs a value\n";
        return false;
    }
    out = argv[++i];
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tenoc::fleet;

    if (argc > 1 && std::strcmp(argv[1], "--worker") == 0) {
        std::string job_file, out_file, watchdog_file;
        for (int i = 2; i < argc; ++i) {
            std::string v;
            if (std::strcmp(argv[i], "--job") == 0 &&
                needValue(argc, argv, i, v)) {
                job_file = v;
            } else if (std::strcmp(argv[i], "--out") == 0 &&
                       needValue(argc, argv, i, v)) {
                out_file = v;
            } else if (std::strcmp(argv[i], "--watchdog-out") == 0 &&
                       needValue(argc, argv, i, v)) {
                watchdog_file = v;
            } else {
                return usage();
            }
        }
        if (job_file.empty() || out_file.empty())
            return usage();
        return runWorkerJob(job_file, out_file, watchdog_file);
    }

    ServerOptions opts;
    opts.workerExe = selfExe(argv[0]);
    std::string spec, spool, sock;
    bool once = false;
    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (std::strcmp(argv[i], "--spec") == 0 &&
            needValue(argc, argv, i, v)) {
            spec = v;
        } else if (std::strcmp(argv[i], "--spool") == 0 &&
                   needValue(argc, argv, i, v)) {
            spool = v;
        } else if (std::strcmp(argv[i], "--listen") == 0 &&
                   needValue(argc, argv, i, v)) {
            sock = v;
        } else if (std::strcmp(argv[i], "--once") == 0) {
            once = true;
        } else if (std::strcmp(argv[i], "--workers") == 0 &&
                   needValue(argc, argv, i, v)) {
            const long n = std::atol(v.c_str());
            if (n < 1)
                return usage();
            opts.workers = static_cast<unsigned>(n);
        } else if (std::strcmp(argv[i], "--cache") == 0 &&
                   needValue(argc, argv, i, v)) {
            opts.cacheDir = v;
        } else if (std::strcmp(argv[i], "--results") == 0 &&
                   needValue(argc, argv, i, v)) {
            opts.resultsDir = v;
        } else if (std::strcmp(argv[i], "--timeout") == 0 &&
                   needValue(argc, argv, i, v)) {
            const long n = std::atol(v.c_str());
            if (n < 0)
                return usage();
            opts.defaultTimeoutSeconds = static_cast<unsigned>(n);
        } else {
            return usage();
        }
    }

    const int modes = (spec.empty() ? 0 : 1) + (spool.empty() ? 0 : 1) +
                      (sock.empty() ? 0 : 1);
    if (modes != 1)
        return usage();

    FleetServer server(opts);
    if (!spec.empty())
        return server.runSpecFile(spec);
    if (!spool.empty())
        return server.runSpool(spool, once);
    return server.runListen(sock);
}
