/**
 * @file
 * Table VI: area estimates (mm^2, 65 nm) for every router/network
 * organization the paper compares, from our calibrated ORION-style
 * model.  Printed in the paper's row/column format with the published
 * values alongside.
 */

#include "common.hh"

namespace
{

using namespace tenoc;

void
printRow(const char *name, const AreaModel &m, const MeshAreaSpec &spec,
         double paper_router_sum, double paper_chip)
{
    const auto r = m.meshArea(spec);
    std::printf("%-22s", name);
    std::printf(" %10.3f", r.linkAreaPerLink);
    std::printf("  ");
    for (std::size_t i = 0; i < r.routerTypes.size(); ++i) {
        const auto &[label, b] = r.routerTypes[i];
        std::printf("%s%s %.2f/%.2f/%.3f=%.3f", i ? " | " : "",
                    label.c_str(), b.crossbar, b.buffer, b.allocator,
                    b.total);
    }
    std::printf("\n%-22s link-sum %7.2f  router-sum %7.2f "
                "(paper %6.2f)  NoC %5.1f%%  chip %7.2f (paper %s)\n\n",
                "", r.linkAreaSum, r.routerAreaSum, paper_router_sum,
                100.0 * r.nocTotal() / AreaModel::kGtx280AreaMm2,
                m.chipArea(r),
                paper_chip > 0 ? std::to_string(paper_chip).substr(0, 6)
                                     .c_str()
                               : "-");
}

} // namespace

int
main()
{
    using namespace tenoc;
    using namespace tenoc::bench;

    banner("Table VI - area estimates (mm^2, 65 nm, ORION-style model)",
           "baseline 69.0 / 2x 263.0 / CP-CR 59.2 / double 29.74 / "
           "double+2P 30.44 router-area sums");
    const AreaModel m;

    std::printf("\nper-router fields: crossbar/buffer/allocator=total\n\n");

    MeshAreaSpec s;
    s.numMcs = 8;
    printRow("Baseline (16B,2VC)", m, s, 69.00, 576.0);

    s.channelBytes = 32.0;
    printRow("2x-BW (32B,2VC)", m, s, 263.0, 790.948);

    s = MeshAreaSpec{};
    s.numMcs = 8;
    s.vcs = 4;
    s.checkerboard = true;
    printRow("CP-CR (16B,4VC)", m, s, 59.20, 566.2);

    s.subnetworks = 2;
    s.channelBytes = 8.0;
    s.vcs = 2;
    printRow("Double CP-CR (2x8B,2VC)", m, s, 29.74, 536.74);

    s.mcInjPorts = 2;
    printRow("Double CP-CR 2P", m, s, 30.44, 537.44);

    // Our simulated double network uses 2 lanes per routing class per
    // slice (same buffer storage as the single 16B network).
    s.vcs = 4;
    printRow("Double CP-CR 2P (sim 4VC)", m, s, -1.0, -1.0);

    // The single-network throughput-effective variant.
    s = MeshAreaSpec{};
    s.numMcs = 8;
    s.vcs = 4;
    s.checkerboard = true;
    s.mcInjPorts = 2;
    printRow("CP-CR 2P single (ours)", m, s, -1.0, -1.0);

    std::printf("half/full router area ratio: ");
    {
        RouterAreaParams full;
        full.vcs = 4;
        auto half = full;
        half.half = true;
        std::printf("%.2f (paper: ~0.56)\n",
                    m.routerArea(half).total / m.routerArea(full).total);
    }
    std::printf("\nheadline: +17%% IPC at 537.44 mm^2 => "
                "1.17 x 576/537.44 = +25.4%% IPC/mm^2.\n");
    return 0;
}
