/**
 * @file
 * Parallel sweep runner for the figure/table harnesses.
 *
 * Every harness evaluates many independent (configuration, workload)
 * or (configuration, injection-rate) points; each point is a complete,
 * self-contained simulation with its own seeded RNG, so the points can
 * run concurrently without changing any result.  sweepMap() fans the
 * points out over a small thread pool and returns the results indexed
 * by point, so output ordering is deterministic and identical to the
 * sequential loop it replaces.
 *
 * Thread-safety notes (why concurrent points are safe):
 *   - every simulation object (Chip, MeshNetwork, Rng) is built inside
 *     the worker that runs it; nothing is shared between points,
 *   - the packet pool is thread_local (see src/common/pool.hh), and a
 *     point runs start-to-finish on one worker thread,
 *   - the only shared statics in the simulator are C++ magic statics
 *     (workload tables, config tables), which are initialization-safe.
 *
 * TENOC_THREADS overrides the worker count (default: hardware
 * concurrency); TENOC_THREADS=1 gives the exact sequential execution.
 *
 * Nested parallelism: simulations can themselves run phase-parallel
 * cycles (TENOC_CYCLE_THREADS, see common/parallel.hh).  sweepMap
 * splits the TENOC_THREADS budget between the two levels — each sweep
 * worker's simulations get at most budget/workers cycle threads — so
 * a sweep never oversubscribes to workers x cycle_threads threads.
 * Cycle-thread counts never change results (bit-exact by design), so
 * this cap is purely a scheduling decision.
 */

#ifndef TENOC_BENCH_SWEEP_HH
#define TENOC_BENCH_SWEEP_HH

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "common/parallel.hh"

namespace tenoc::bench
{

/** Worker count: TENOC_THREADS env override, else hardware threads.
 *  Malformed values (non-numeric, trailing junk, < 1) are rejected
 *  with a warning rather than silently parsed as 0. */
inline unsigned
sweepThreads()
{
    if (const char *env = std::getenv("TENOC_THREADS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end == env || *end != '\0' || v < 1) {
            warn("ignoring invalid TENOC_THREADS='", env,
                 "' (want a positive integer)");
        } else {
            return static_cast<unsigned>(v);
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/**
 * Evaluates fn(0..n-1) over a thread pool and returns the results in
 * index order.  fn's result type must be default-constructible (it is
 * placed into a pre-sized vector).  The first exception thrown by any
 * point is rethrown here after all workers have stopped.
 */
template <typename Fn>
auto
sweepMap(std::size_t n, Fn &&fn)
    -> std::vector<decltype(fn(std::size_t{0}))>
{
    using Result = decltype(fn(std::size_t{0}));
    std::vector<Result> out(n);
    if (n == 0)
        return out;
    const std::size_t workers =
        std::min<std::size_t>(sweepThreads(), n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = fn(i);
        return out;
    }

    // Split the thread budget between sweep workers and the cycle
    // pools of the simulations they construct (networks resolve their
    // cycle-thread count at construction, inside the workers).
    const unsigned prev_cap = parallel::setCycleThreadCap(
        std::max<unsigned>(
            1, sweepThreads() / static_cast<unsigned>(workers)));

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mu;
    auto work = [&] {
        while (!failed.load(std::memory_order_relaxed)) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                out[i] = fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mu);
                if (!error)
                    error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
            }
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t)
        pool.emplace_back(work);
    for (auto &t : pool)
        t.join();
    parallel::setCycleThreadCap(prev_cap);
    if (error)
        std::rethrow_exception(error);
    return out;
}

} // namespace tenoc::bench

#endif // TENOC_BENCH_SWEEP_HH
