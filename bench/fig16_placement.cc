/**
 * @file
 * Figure 16: checkerboard (staggered) MC placement versus the
 * baseline top-bottom placement, full routers and DOR in both.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace tenoc;
    using namespace tenoc::bench;

    banner("Figure 16 - checkerboard MC placement (CP vs TB)",
           "+13.2% HM; WP loses ~6% to global-fairness effects");
    const double scale = scaleFromArgs(argc, argv);

    const auto runs = suites({ConfigId::BASELINE_TB_DOR,
                              ConfigId::CP_DOR_2VC}, scale);
    const auto &tb = runs[0];
    const auto &cp = runs[1];

    printSpeedupSeries("CP vs TB", tb, cp);
    printClassMeans(tb, cp);
    std::printf("\npaper: +13.2%% HM; staggered placement relieves "
                "the reply hotspots that adjacent top/bottom MCs "
                "create.\n");
    return 0;
}
