/**
 * @file
 * Fault-injection sweep: throughput degradation of the 6x6 baseline
 * mesh as a function of injected fault rate, for each fault class
 * (link stalls, router freezes, dropped credits).  Each point runs the
 * identical seeded many-to-few workload against a seeded fault
 * process; the deadlock watchdog is armed with an observing handler,
 * so a point that wedges is reported as `deadlocked` instead of
 * aborting the sweep.  Writes BENCH_fault_sweep.json.
 *
 * `fault_sweep --demo-deadlock` instead runs one deliberately wedged
 * network (a permanent link stall under live traffic) until the
 * watchdog's packet-age detector fires, writes the diagnostic snapshot
 * to tenoc_watchdog_snapshot.json, and exits 0 only if the watchdog
 * fired — CI uses it to prove the fail-fast path end to end.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "accel/experiments.hh"
#include "common/rng.hh"
#include "noc/mesh_network.hh"
#include "sweep.hh"
#include "telemetry/json.hh"

namespace
{

using namespace tenoc;

struct NullSink : PacketSink
{
    bool tryReserve(const Packet &) override { return true; }
    void deliver(PacketPtr, Cycle) override {}
};

/** Offered load (flits/node/cycle), near many-to-few saturation so
 *  fault-induced capacity loss shows up as lost throughput rather
 *  than vanishing into slack. */
constexpr double LOAD = 0.08;

struct SweepPoint
{
    std::string series;
    double rate = 0.0;
    Cycle cyclesRun = 0;
    std::uint64_t flitsEjected = 0;
    std::uint64_t packetsEjected = 0;
    double throughput = 0.0; ///< accepted flits/node/cycle
    bool deadlocked = false;
    FaultStats faults;
};

FaultConfig
faultsFor(const std::string &series, double rate)
{
    FaultConfig f;
    if (series == "link_stall") {
        f.linkStallRate = rate;
        f.linkStallDuration = 32;
    } else if (series == "router_freeze") {
        f.routerFreezeRate = rate;
        f.routerFreezeDuration = 32;
    } else if (series == "credit_drop") {
        f.creditDropRate = rate;
        // Unbounded permanent credit leaks decay into certain
        // deadlock; cap them so low-rate points measure degradation
        // (high-rate points may still wedge and report `deadlocked`).
        f.maxCreditDrops = 1024;
    }
    return f;
}

/**
 * One sweep point: seeded LOAD flits/node/cycle many-to-few requests
 * for `cycles` interconnect cycles under the series' fault process.
 */
SweepPoint
runPoint(const std::string &series, double rate, Cycle cycles)
{
    MeshNetworkParams p; // 6x6 Table III baseline
    p.watchdogWindow = 20000;
    p.faults = faultsFor(series, rate);
    MeshNetwork net(p);
    SweepPoint pt;
    pt.series = series;
    pt.rate = rate;
    net.setWatchdogHandler(
        [&pt](const WatchdogReport &) { pt.deadlocked = true; });

    NullSink sink;
    const auto &topo = net.topology();
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        net.setSink(n, &sink);

    Rng rng(7);
    Cycle now = 0;
    for (; now < cycles && !pt.deadlocked; ++now) {
        for (NodeId core : topo.computeNodes()) {
            if (rng.nextBool(LOAD) && net.canInject(core, 0)) {
                auto pkt = makePacket();
                pkt->src = core;
                pkt->dst = rng.pick(topo.mcNodes());
                pkt->sizeFlits = 1;
                pkt->sizeBytes = p.flitBytes;
                net.inject(std::move(pkt), now);
            }
        }
        net.cycle(now);
    }

    pt.cyclesRun = now;
    pt.flitsEjected = net.stats().flitsEjected;
    pt.packetsEjected = net.stats().packetsEjected;
    if (now > 0) {
        pt.throughput = static_cast<double>(pt.flitsEjected) /
            (static_cast<double>(now) * topo.numNodes());
    }
    if (const FaultStats *fs = net.faultStats())
        pt.faults = *fs;
    return pt;
}

telemetry::JsonValue
pointJson(const SweepPoint &pt, double baseline)
{
    using telemetry::JsonValue;
    JsonValue v = JsonValue::makeObject();
    v.set("rate", JsonValue(pt.rate));
    v.set("cycles", JsonValue(pt.cyclesRun));
    v.set("flits_ejected", JsonValue(pt.flitsEjected));
    v.set("packets_ejected", JsonValue(pt.packetsEjected));
    v.set("throughput_flits_node_cycle", JsonValue(pt.throughput));
    v.set("relative_throughput",
          JsonValue(baseline > 0.0 ? pt.throughput / baseline : 0.0));
    v.set("deadlocked", JsonValue(pt.deadlocked));
    v.set("link_stalls", JsonValue(pt.faults.linkStalls));
    v.set("router_freezes", JsonValue(pt.faults.routerFreezes));
    v.set("credit_drops", JsonValue(pt.faults.creditDrops));
    return v;
}

/** See the file comment; @return 0 iff the watchdog fired. */
int
runDemoDeadlock()
{
    MeshNetworkParams p;
    p.maxPacketAge = 4000; // starvation detector catches the wedge
    // Wedge a mid-row eastbound link under live traffic: the rest of
    // the mesh keeps making progress, the packets behind the stall age
    // out.
    const Topology pre(p.topo);
    p.faults.schedule.push_back(FaultEvent{
        FaultKind::LINK_STALL, /*at=*/1000, /*duration=*/0,
        pre.nodeAt(2, 2), DIR_EAST, 0});
    MeshNetwork net(p);

    bool fired = false;
    net.setWatchdogHandler([&](const WatchdogReport &r) {
        std::ofstream os("tenoc_watchdog_snapshot.json");
        os << r.snapshotJson << "\n";
        std::printf("fault_sweep --demo-deadlock: watchdog fired "
                    "(%s) at cycle %llu, %llu packet(s) in flight, "
                    "oldest %llu cycles; snapshot written to "
                    "tenoc_watchdog_snapshot.json\n",
                    r.reason.c_str(),
                    static_cast<unsigned long long>(r.now),
                    static_cast<unsigned long long>(r.inflight),
                    static_cast<unsigned long long>(r.oldestAge));
        fired = true;
    });

    NullSink sink;
    const auto &topo = net.topology();
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        net.setSink(n, &sink);

    Rng rng(7);
    for (Cycle now = 0; now < 30000 && !fired; ++now) {
        for (NodeId core : topo.computeNodes()) {
            if (rng.nextBool(LOAD) && net.canInject(core, 0)) {
                auto pkt = makePacket();
                pkt->src = core;
                pkt->dst = rng.pick(topo.mcNodes());
                pkt->sizeFlits = 1;
                pkt->sizeBytes = p.flitBytes;
                net.inject(std::move(pkt), now);
            }
        }
        net.cycle(now);
    }
    if (!fired)
        std::fprintf(stderr, "fault_sweep --demo-deadlock: watchdog "
                             "never fired\n");
    return fired ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tenoc;
    using telemetry::JsonValue;

    // The credit-drop series leaks credits on purpose, which is
    // exactly the inconsistency TENOC_VALIDATE turns into a panic.
    // This harness measures throughput under faults, not invariants,
    // so drop a force-validate inherited from the environment.
    ::unsetenv("TENOC_VALIDATE");

    double scale = envScale(1.0);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--demo-deadlock") == 0)
            return runDemoDeadlock();
        const double v = std::atof(argv[i]);
        if (v > 0.0)
            scale = v;
    }
    const auto cycles = static_cast<Cycle>(50000 * scale);

    const std::vector<std::string> series = {
        "link_stall", "router_freeze", "credit_drop"};
    const std::vector<double> rates = {0.0,  1e-4, 3e-4,
                                       1e-3, 3e-3, 1e-2};

    std::printf("fault_sweep: 6x6 baseline mesh, %llu cycles/point "
                "(scale %.2f)\n",
                static_cast<unsigned long long>(cycles), scale);

    const std::size_t n = series.size() * rates.size();
    const auto points = bench::sweepMap(n, [&](std::size_t i) {
        return runPoint(series[i / rates.size()],
                        rates[i % rates.size()], cycles);
    });

    JsonValue doc = JsonValue::makeObject();
    doc.set("schema", JsonValue("tenoc-fault-sweep-v1"));
    doc.set("benchmark", JsonValue("fault_sweep"));
    doc.set("topology", JsonValue("6x6"));
    doc.set("scale", JsonValue(scale));
    doc.set("cycles_per_point", JsonValue(cycles));
    doc.set("offered_load", JsonValue(LOAD));
    JsonValue series_arr = JsonValue::makeArray();
    for (std::size_t s = 0; s < series.size(); ++s) {
        const double baseline = points[s * rates.size()].throughput;
        JsonValue sj = JsonValue::makeObject();
        sj.set("fault_kind", JsonValue(series[s]));
        JsonValue pts = JsonValue::makeArray();
        std::printf("\n%s:\n", series[s].c_str());
        for (std::size_t r = 0; r < rates.size(); ++r) {
            const SweepPoint &pt = points[s * rates.size() + r];
            pts.push(pointJson(pt, baseline));
            std::printf("  rate %8.1e  throughput %.4f  (%.1f%%)%s\n",
                        pt.rate, pt.throughput,
                        baseline > 0.0
                            ? 100.0 * pt.throughput / baseline
                            : 0.0,
                        pt.deadlocked ? "  DEADLOCKED" : "");
        }
        sj.set("points", pts);
        series_arr.push(sj);
    }
    doc.set("series", series_arr);
    std::ofstream os("BENCH_fault_sweep.json");
    doc.write(os);
    os << "\n";
    std::printf("\nwrote BENCH_fault_sweep.json\n");
    return 0;
}
