/**
 * @file
 * Ablation: half-router pipeline depth.  Sec. V-A models half-routers
 * with a 3-stage pipeline and notes "the performance impact of one
 * less stage was negligible"; this harness verifies that on the
 * checkerboard configuration.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace tenoc;
    using namespace tenoc::bench;

    banner("Ablation - half-router pipeline depth (3 vs 4 stages)",
           "Sec. V-A: negligible difference");
    const double scale = scaleFromArgs(argc, argv, 0.5);

    auto p3 = makeConfig(ConfigId::CP_CR_4VC);
    auto p4 = makeConfig(ConfigId::CP_CR_4VC);
    p4.mesh.halfPipelineDepth = 4;

    std::fprintf(stderr,
                 "[bench] 3- and 4-stage half-routers (%u threads)\n",
                 sweepThreads());
    const auto runs = suites(std::vector<ChipParams>{p3, p4}, scale);
    const auto &r3 = runs[0];
    const auto &r4 = runs[1];

    printSpeedupSeries("3-stage vs 4-stage", r4, r3);
    std::printf("\nexpected: within ~1-2%% on every benchmark.\n");
    return 0;
}
