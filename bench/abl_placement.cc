/**
 * @file
 * Ablation: alternative checkerboard MC placements.  Sec. V-B picks
 * the best of several valid staggered placements; this harness
 * compares a few against the default and top-bottom.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace tenoc;
    using namespace tenoc::bench;

    banner("Ablation - MC placement variants",
           "Sec. V-B: several valid checkerboard placements; the "
           "staggered one wins");
    const double scale = scaleFromArgs(argc, argv, 0.5);

    struct Variant
    {
        const char *name;
        std::vector<std::pair<unsigned, unsigned>> mcs; // empty = TB
    };
    const Variant variants[] = {
        {"top-bottom (baseline)", {}},
        {"staggered X (default)", defaultCheckerboardMcs6x6()},
        {"two columns",
         {{1, 0}, {1, 2}, {1, 4}, {3, 0}, {4, 1}, {4, 3}, {4, 5},
          {3, 2}}},
        {"edges",
         {{1, 0}, {3, 0}, {0, 1}, {5, 2}, {0, 3}, {5, 4}, {2, 5},
          {4, 5}}},
    };

    const char *benches[] = {"BFS", "KM", "SCP", "RAY", "MM"};
    std::printf("\n%-24s", "placement");
    for (const char *b : benches)
        std::printf(" %8s", b);
    std::printf("   (IPC)\n");

    const std::size_t per = std::size(benches);
    const auto ipcs =
        sweepMap(std::size(variants) * per, [&](std::size_t i) {
            const Variant &v = variants[i / per];
            ChipParams p = makeConfig(ConfigId::BASELINE_TB_DOR);
            if (!v.mcs.empty()) {
                p.mesh.topo.placement = McPlacement::CUSTOM;
                p.mesh.topo.customMcs = v.mcs;
            }
            const auto prof =
                scaleWorkload(findWorkload(benches[i % per]), scale);
            return runWorkload(p, prof).ipc;
        });

    std::size_t idx = 0;
    for (const auto &v : variants) {
        std::printf("%-24s", v.name);
        for (std::size_t b = 0; b < per; ++b)
            std::printf(" %8.1f", ipcs[idx++]);
        std::printf("\n");
    }
    std::printf("\nexpected: staggered placements beat top-bottom on "
                "heavy-traffic benchmarks by spreading reply "
                "hot-spots.\n");
    return 0;
}
