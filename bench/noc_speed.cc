/**
 * @file
 * Simulator speed microbenchmark: interconnect cycles per second and
 * flit-hops per second on the 6x6 baseline mesh, at low load and at
 * saturation, with the idle-skip scheduler against the reference
 * tick-everything scheduler.  Writes BENCH_noc_speed.json so the
 * simulator's performance trajectory is tracked across commits (see
 * docs/performance.md).
 *
 * Both schedulers are driven with the identical seeded workload, so
 * the run doubles as a cheap equivalence check: the benchmark fails if
 * the two modes diverge on any network statistic it samples.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "accel/experiments.hh"
#include "common/rng.hh"
#include "noc/mesh_network.hh"
#include "telemetry/json.hh"

namespace
{

using namespace tenoc;

struct SpeedPoint
{
    double load = 0.0;
    bool idleSkip = false;
    std::uint64_t cycles = 0;
    std::uint64_t hops = 0;
    std::uint64_t packets = 0;
    double wallSeconds = 0.0;
    double cyclesPerSec = 0.0;
    double hopsPerSec = 0.0;
};

/** Discards ejected packets without backpressure. */
struct NullSink : PacketSink
{
    bool tryReserve(const Packet &) override { return true; }
    void deliver(PacketPtr, Cycle) override {}
};

/**
 * Runs `cycles` interconnect cycles of many-to-few request traffic
 * (each compute node injects a 1-flit packet to a random MC with
 * probability `load` per cycle) and times the loop.
 */
SpeedPoint
runPoint(bool idle_skip, double load, Cycle cycles)
{
    MeshNetworkParams p; // defaults = 6x6 Table III baseline
    p.idleSkip = idle_skip;
    MeshNetwork net(p);
    NullSink sink;
    const auto &topo = net.topology();
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        net.setSink(n, &sink);

    Rng rng(7);
    const auto t0 = std::chrono::steady_clock::now();
    for (Cycle now = 0; now < cycles; ++now) {
        for (NodeId core : topo.computeNodes()) {
            if (rng.nextBool(load) && net.canInject(core, 0)) {
                auto pkt = makePacket();
                pkt->src = core;
                pkt->dst = rng.pick(topo.mcNodes());
                pkt->sizeFlits = 1;
                pkt->sizeBytes = p.flitBytes;
                net.inject(std::move(pkt), now);
            }
        }
        net.cycle(now);
    }
    const auto t1 = std::chrono::steady_clock::now();

    SpeedPoint pt;
    pt.load = load;
    pt.idleSkip = idle_skip;
    pt.cycles = cycles;
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        pt.hops += net.router(n).flitsTraversed();
    pt.packets = net.stats().packetsEjected;
    pt.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    if (pt.wallSeconds > 0.0) {
        pt.cyclesPerSec = static_cast<double>(cycles) / pt.wallSeconds;
        pt.hopsPerSec = static_cast<double>(pt.hops) / pt.wallSeconds;
    }
    return pt;
}

telemetry::JsonValue
pointJson(const SpeedPoint &pt)
{
    using telemetry::JsonValue;
    JsonValue v = JsonValue::makeObject();
    v.set("load", JsonValue(pt.load));
    v.set("scheduler", JsonValue(pt.idleSkip ? "idle_skip"
                                             : "full_tick"));
    v.set("icnt_cycles", JsonValue(pt.cycles));
    v.set("flit_hops", JsonValue(pt.hops));
    v.set("packets_ejected", JsonValue(pt.packets));
    v.set("wall_seconds", JsonValue(pt.wallSeconds));
    v.set("icnt_cycles_per_second", JsonValue(pt.cyclesPerSec));
    v.set("flit_hops_per_second", JsonValue(pt.hopsPerSec));
    return v;
}

void
printPoint(const char *label, const SpeedPoint &pt)
{
    std::printf("  %-10s %-10s %12.3e cycles/s %12.3e hops/s "
                "(%.2fs wall)\n",
                label, pt.idleSkip ? "idle-skip" : "full-tick",
                pt.cyclesPerSec, pt.hopsPerSec, pt.wallSeconds);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tenoc;

    // TENOC_SCALE (or argv[1]) shortens the run for CI smoke tests.
    double scale = envScale(1.0);
    if (argc > 1) {
        const double v = std::atof(argv[1]);
        if (v > 0.0)
            scale = v;
    }
    const auto low_cycles =
        static_cast<Cycle>(200000 * scale);
    const auto sat_cycles =
        static_cast<Cycle>(50000 * scale);

    std::printf("noc_speed: 6x6 baseline mesh, idle-skip vs "
                "full-tick scheduler (scale %.2f)\n", scale);

    const double LOW_LOAD = 0.005;
    const double SAT_LOAD = 0.20; // far past many-to-few saturation
    const auto low_ref = runPoint(false, LOW_LOAD, low_cycles);
    const auto low_skip = runPoint(true, LOW_LOAD, low_cycles);
    const auto sat_ref = runPoint(false, SAT_LOAD, sat_cycles);
    const auto sat_skip = runPoint(true, SAT_LOAD, sat_cycles);

    // Both modes ran the identical seeded workload; any statistical
    // divergence means the idle-skip scheduler is broken.
    if (low_ref.hops != low_skip.hops ||
        low_ref.packets != low_skip.packets ||
        sat_ref.hops != sat_skip.hops ||
        sat_ref.packets != sat_skip.packets) {
        std::fprintf(stderr, "noc_speed: idle-skip diverged from the "
                             "reference scheduler!\n");
        return 1;
    }

    std::printf("\nlow load (%.3f flits/node/cycle):\n", LOW_LOAD);
    printPoint("", low_ref);
    printPoint("", low_skip);
    const double low_speedup = low_ref.cyclesPerSec > 0.0
        ? low_skip.cyclesPerSec / low_ref.cyclesPerSec : 0.0;
    std::printf("  idle-skip speedup: %.2fx\n", low_speedup);

    std::printf("\nsaturation (offered %.2f flits/node/cycle):\n",
                SAT_LOAD);
    printPoint("", sat_ref);
    printPoint("", sat_skip);
    const double sat_speedup = sat_ref.cyclesPerSec > 0.0
        ? sat_skip.cyclesPerSec / sat_ref.cyclesPerSec : 0.0;
    std::printf("  idle-skip speedup: %.2fx\n", sat_speedup);

    using telemetry::JsonValue;
    JsonValue doc = JsonValue::makeObject();
    doc.set("benchmark", JsonValue("noc_speed"));
    doc.set("topology", JsonValue("6x6"));
    doc.set("scale", JsonValue(scale));
    JsonValue points = JsonValue::makeArray();
    for (const auto &pt : {low_ref, low_skip, sat_ref, sat_skip})
        points.push(pointJson(pt));
    doc.set("points", points);
    doc.set("low_load_speedup", JsonValue(low_speedup));
    doc.set("saturation_speedup", JsonValue(sat_speedup));
    std::ofstream os("BENCH_noc_speed.json");
    doc.write(os);
    os << "\n";
    std::printf("\nwrote BENCH_noc_speed.json\n");
    return 0;
}
