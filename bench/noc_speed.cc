/**
 * @file
 * Simulator speed microbenchmark: interconnect cycles per second and
 * flit-hops per second on the 6x6 baseline mesh, at low load and at
 * saturation, with the idle-skip scheduler against the reference
 * tick-everything scheduler.  Writes BENCH_noc_speed.json so the
 * simulator's performance trajectory is tracked across commits (see
 * docs/performance.md).
 *
 * Both schedulers are driven with the identical seeded workload, so
 * the run doubles as a cheap equivalence check: the benchmark fails if
 * the two modes diverge on any network statistic it samples.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "accel/experiments.hh"
#include "common/rng.hh"
#include "noc/mesh_network.hh"
#include "telemetry/json.hh"

namespace
{

using namespace tenoc;

struct SpeedPoint
{
    double load = 0.0;
    bool idleSkip = false;
    std::uint64_t cycles = 0;
    std::uint64_t hops = 0;
    std::uint64_t packets = 0;
    double wallSeconds = 0.0;
    double cyclesPerSec = 0.0;
    double hopsPerSec = 0.0;
    /** Per-phase wall-time breakdown (--profile); cycles == 0 when
     *  profiling was off for this point. */
    PhaseProfile profile;
};

/** --profile: attach a PhaseProfile to every measured network and
 *  emit the per-phase breakdown alongside each point. */
bool g_profile = false;

/** Discards ejected packets without backpressure. */
struct NullSink : PacketSink
{
    bool tryReserve(const Packet &) override { return true; }
    void deliver(PacketPtr, Cycle) override {}
};

/**
 * Runs `cycles` interconnect cycles of many-to-few request traffic
 * (each compute node injects a 1-flit packet to a random MC with
 * probability `load` per cycle) and times the loop.  `threads` drives
 * the intra-cycle parallel engine (1 = serial scheduler); `dim`
 * scales the mesh (the threads sweep uses a larger mesh so per-phase
 * work amortizes the barriers).
 */
/**
 * Applies a `--topology` axis value to the network parameters:
 * "mesh" (default), "torus" (wrap links + dateline dimension-order
 * routing), or "cmesh" (4 terminals concentrated per router).
 */
void
applyTopologyAxis(MeshNetworkParams &p, const std::string &topology)
{
    if (topology == "mesh")
        return;
    if (topology == "torus") {
        p.topo.kind = TopoKind::TORUS;
    } else if (topology == "cmesh") {
        p.topo.concentration = 4;
    } else {
        std::fprintf(stderr,
                     "noc_speed: unknown --topology '%s' "
                     "(expected mesh, torus, or cmesh)\n",
                     topology.c_str());
        std::exit(1);
    }
}

SpeedPoint
runPoint(bool idle_skip, double load, Cycle cycles,
         unsigned threads = 1, unsigned dim = 6,
         const std::string &topology = "mesh")
{
    MeshNetworkParams p; // defaults = 6x6 Table III baseline
    p.idleSkip = idle_skip;
    p.cycleThreads = threads;
    if (dim != 6) {
        p.topo.rows = dim;
        p.topo.cols = dim;
        p.topo.numMcs = dim;
    }
    applyTopologyAxis(p, topology);
    MeshNetwork net(p);
    PhaseProfile profile;
    if (g_profile)
        net.setPhaseProfile(&profile);
    NullSink sink;
    const auto &topo = net.topology();
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        net.setSink(n, &sink);

    Rng rng(7);
    const unsigned conc = topo.concentration();
    const auto t0 = std::chrono::steady_clock::now();
    for (Cycle now = 0; now < cycles; ++now) {
        for (NodeId core : topo.computeNodes()) {
            // One Bernoulli draw per terminal: a concentrated router
            // carries its full complement of cores' offered load.
            for (unsigned s = 0; s < conc; ++s) {
                if (rng.nextBool(load) && net.canInject(core, 0)) {
                    auto pkt = makePacket();
                    pkt->src = core;
                    pkt->dst = rng.pick(topo.mcNodes());
                    pkt->sizeFlits = 1;
                    pkt->sizeBytes = p.flitBytes;
                    net.inject(std::move(pkt), now);
                }
            }
        }
        net.cycle(now);
    }
    const auto t1 = std::chrono::steady_clock::now();

    SpeedPoint pt;
    pt.load = load;
    pt.idleSkip = idle_skip;
    pt.cycles = cycles;
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        pt.hops += net.router(n).flitsTraversed();
    pt.packets = net.stats().packetsEjected;
    pt.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    if (pt.wallSeconds > 0.0) {
        pt.cyclesPerSec = static_cast<double>(cycles) / pt.wallSeconds;
        pt.hopsPerSec = static_cast<double>(pt.hops) / pt.wallSeconds;
    }
    pt.profile = profile;
    return pt;
}

void
printProfile(const PhaseProfile &pr)
{
    if (pr.cycles == 0)
        return;
    const double total = static_cast<double>(
        pr.readInputsNs + pr.injectNs + pr.computeNs + pr.drainNs +
        pr.bookkeepingNs);
    const auto pct = [&](std::uint64_t ns) {
        return total > 0.0 ? 100.0 * static_cast<double>(ns) / total
                           : 0.0;
    };
    std::printf("    phases: readInputs %.1f%%  inject %.1f%%  "
                "compute %.1f%%  drain %.1f%%  bookkeeping %.1f%%\n",
                pct(pr.readInputsNs), pct(pr.injectNs),
                pct(pr.computeNs), pct(pr.drainNs),
                pct(pr.bookkeepingNs));
}

telemetry::JsonValue
pointJson(const SpeedPoint &pt)
{
    using telemetry::JsonValue;
    JsonValue v = JsonValue::makeObject();
    v.set("load", JsonValue(pt.load));
    v.set("scheduler", JsonValue(pt.idleSkip ? "idle_skip"
                                             : "full_tick"));
    v.set("icnt_cycles", JsonValue(pt.cycles));
    v.set("flit_hops", JsonValue(pt.hops));
    v.set("packets_ejected", JsonValue(pt.packets));
    v.set("wall_seconds", JsonValue(pt.wallSeconds));
    v.set("icnt_cycles_per_second", JsonValue(pt.cyclesPerSec));
    v.set("flit_hops_per_second", JsonValue(pt.hopsPerSec));
    if (pt.profile.cycles != 0) {
        const PhaseProfile &pr = pt.profile;
        JsonValue prof = JsonValue::makeObject();
        prof.set("cycles", JsonValue(pr.cycles));
        prof.set("read_inputs_ns", JsonValue(pr.readInputsNs));
        prof.set("inject_ns", JsonValue(pr.injectNs));
        prof.set("compute_ns", JsonValue(pr.computeNs));
        prof.set("drain_ns", JsonValue(pr.drainNs));
        prof.set("bookkeeping_ns", JsonValue(pr.bookkeepingNs));
        v.set("phase_profile", prof);
    }
    return v;
}

void
printPoint(const char *label, const SpeedPoint &pt)
{
    std::printf("  %-10s %-10s %12.3e cycles/s %12.3e hops/s "
                "(%.2fs wall)\n",
                label, pt.idleSkip ? "idle-skip" : "full-tick",
                pt.cyclesPerSec, pt.hopsPerSec, pt.wallSeconds);
    printProfile(pt.profile);
}

/**
 * Serial-vs-parallel wall-clock sweep (`--threads-sweep [N]`): runs
 * the identical seeded workload with the serial scheduler and with the
 * phase-parallel engine at N cycle threads (default 8), at low load
 * and at saturation, on a 16x16 mesh (enough per-phase work to
 * amortize the phase barriers).  The engine is bit-exact by design, so
 * the sweep doubles as an equivalence check and fails on divergence.
 */
int
runThreadsSweep(unsigned threads, double scale)
{
    using namespace tenoc;
    using telemetry::JsonValue;

    constexpr unsigned DIM = 16;
    const auto low_cycles = static_cast<Cycle>(40000 * scale);
    const auto sat_cycles = static_cast<Cycle>(15000 * scale);
    const double LOW_LOAD = 0.005;
    const double SAT_LOAD = 0.20;

    std::printf("noc_speed --threads-sweep: %ux%u mesh, serial vs "
                "%u cycle threads (scale %.2f)\n",
                DIM, DIM, threads, scale);

    const auto low_1 =
        runPoint(true, LOW_LOAD, low_cycles, 1, DIM);
    const auto low_n =
        runPoint(true, LOW_LOAD, low_cycles, threads, DIM);
    const auto sat_1 =
        runPoint(true, SAT_LOAD, sat_cycles, 1, DIM);
    const auto sat_n =
        runPoint(true, SAT_LOAD, sat_cycles, threads, DIM);

    // The parallel engine must be bit-identical to serial execution.
    if (low_1.hops != low_n.hops ||
        low_1.packets != low_n.packets ||
        sat_1.hops != sat_n.hops ||
        sat_1.packets != sat_n.packets) {
        std::fprintf(stderr, "noc_speed: threaded cycle engine "
                             "diverged from serial execution!\n");
        return 1;
    }

    std::printf("\nlow load (%.3f flits/node/cycle):\n", LOW_LOAD);
    printPoint("serial", low_1);
    printPoint("threaded", low_n);
    const double low_speedup = low_1.wallSeconds > 0.0
        ? low_1.wallSeconds / low_n.wallSeconds : 0.0;
    std::printf("  parallel speedup: %.2fx\n", low_speedup);

    std::printf("\nsaturation (offered %.2f flits/node/cycle):\n",
                SAT_LOAD);
    printPoint("serial", sat_1);
    printPoint("threaded", sat_n);
    const double sat_speedup = sat_1.wallSeconds > 0.0
        ? sat_1.wallSeconds / sat_n.wallSeconds : 0.0;
    std::printf("  parallel speedup: %.2fx\n", sat_speedup);

    JsonValue doc = JsonValue::makeObject();
    doc.set("benchmark", JsonValue("noc_speed"));
    doc.set("mode", JsonValue("threads_sweep"));
    doc.set("topology", JsonValue("16x16"));
    doc.set("scale", JsonValue(scale));
    JsonValue sweep = JsonValue::makeObject();
    sweep.set("threads", JsonValue(std::uint64_t{threads}));
    JsonValue points = JsonValue::makeArray();
    for (const auto *pt : {&low_1, &low_n, &sat_1, &sat_n}) {
        JsonValue v = pointJson(*pt);
        v.set("cycle_threads",
              JsonValue(std::uint64_t{pt == &low_n || pt == &sat_n
                                          ? threads : 1u}));
        points.push(v);
    }
    sweep.set("points", points);
    sweep.set("low_load_speedup", JsonValue(low_speedup));
    sweep.set("saturation_speedup", JsonValue(sat_speedup));
    doc.set("threads_sweep", sweep);
    std::ofstream os("BENCH_noc_speed.json");
    doc.write(os);
    os << "\n";
    std::printf("\nwrote BENCH_noc_speed.json\n");
    return 0;
}

/**
 * Huge-mesh scaling sweep (`--mesh-sweep`): runs the identical
 * many-to-few workload at a fixed 0.1 flits/node/cycle injection rate
 * on 8x8 through 64x64 meshes (128x128 with `--huge`; it takes a
 * while) and reports the size-normalized simulation throughput
 * `cycles_per_sec_per_router` — aggregate router-cycles simulated per
 * wall second (icnt cycles/sec x routers).  The structure-of-arrays
 * hot path keeps this roughly flat as the mesh grows; a drop at large
 * dims means the per-router cost regressed.  Cycle counts shrink with
 * the router count so every point does comparable total work.
 */
int
runMeshSweep(bool huge, double scale, const std::string &compare_path,
             const std::string &topology);

/**
 * Regression gate (`--compare baseline.json`): matches the measured
 * points against a previously written BENCH_noc_speed.json on
 * (load, scheduler) and fails if any point's cycles/second dropped
 * more than the tolerance (default 15%, override with
 * TENOC_SPEED_TOLERANCE).  Compare against a baseline captured on the
 * same machine — absolute simulation rates do not transfer between
 * hosts (bench/baselines/ holds a reference-shape example; CI
 * regenerates its own).
 */
int
compareBaseline(const std::string &path,
                const std::vector<SpeedPoint> &current)
{
    using telemetry::JsonValue;

    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "noc_speed: cannot open baseline '%s'\n",
                     path.c_str());
        return 1;
    }
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    JsonValue doc;
    std::string err;
    if (!JsonValue::parse(text, doc, &err) || !doc.isObject()) {
        std::fprintf(stderr, "noc_speed: bad baseline '%s': %s\n",
                     path.c_str(), err.c_str());
        return 1;
    }
    const JsonValue *points = doc.find("points");
    if (!points || !points->isArray()) {
        std::fprintf(stderr,
                     "noc_speed: baseline '%s' has no points array\n",
                     path.c_str());
        return 1;
    }

    double tolerance = 0.15;
    if (const char *env = std::getenv("TENOC_SPEED_TOLERANCE")) {
        const double v = std::atof(env);
        if (v > 0.0 && v < 1.0)
            tolerance = v;
    }

    std::printf("\ncomparing against %s (tolerance -%.0f%%):\n",
                path.c_str(), tolerance * 100.0);
    int failures = 0;
    unsigned matched = 0;
    for (const SpeedPoint &pt : current) {
        const char *sched = pt.idleSkip ? "idle_skip" : "full_tick";
        const JsonValue *base = nullptr;
        for (const JsonValue &bp : points->asArray()) {
            if (!bp.isObject())
                continue;
            const JsonValue *load = bp.find("load");
            const JsonValue *scheduler = bp.find("scheduler");
            if (load && load->isNumber() &&
                load->asNumber() == pt.load && scheduler &&
                scheduler->isString() &&
                scheduler->asString() == sched) {
                base = &bp;
                break;
            }
        }
        if (!base) {
            std::printf("  load %.3f %-10s: no baseline point, "
                        "skipped\n", pt.load, sched);
            continue;
        }
        const JsonValue *rate = base->find("icnt_cycles_per_second");
        if (!rate || !rate->isNumber() || rate->asNumber() <= 0.0)
            continue;
        ++matched;
        const double ratio = pt.cyclesPerSec / rate->asNumber();
        const bool bad = ratio < 1.0 - tolerance;
        std::printf("  load %.3f %-10s: %.3e vs %.3e cycles/s "
                    "(%+.1f%%)%s\n",
                    pt.load, sched, pt.cyclesPerSec, rate->asNumber(),
                    (ratio - 1.0) * 100.0, bad ? "  REGRESSION" : "");
        if (bad)
            ++failures;
    }
    if (matched == 0) {
        std::fprintf(stderr, "noc_speed: no baseline points matched — "
                             "stale baseline file?\n");
        return 1;
    }
    if (failures != 0) {
        std::fprintf(stderr, "noc_speed: %d point(s) regressed more "
                             "than %.0f%% in cycles/second\n",
                     failures, tolerance * 100.0);
        return 1;
    }
    std::printf("  all %u matched point(s) within tolerance\n",
                matched);
    return 0;
}

/** One measured mesh-sweep row: (dim, load) keys a baseline point. */
struct MeshRate
{
    unsigned dim;
    double load;
    double perRouter;
};

/**
 * Mesh-sweep regression gate: matches baseline points on (dim, load)
 * and fails when `cycles_per_sec_per_router` dropped more than the
 * tolerance (TENOC_SPEED_TOLERANCE, default 15%).  Small meshes are
 * noisy in shared-runner CI, so only dims at or above the gate dim
 * (TENOC_MESH_GATE_DIM, default 32) fail the run; smaller points are
 * reported informationally.  Baselines written before the high-load
 * row existed carry no `load` field; those legacy points only match
 * the default low-load rows.
 */
int
compareMeshBaseline(const std::string &path,
                    const std::vector<MeshRate> &current)
{
    using telemetry::JsonValue;

    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "noc_speed: cannot open baseline '%s'\n",
                     path.c_str());
        return 1;
    }
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    JsonValue doc;
    std::string err;
    if (!JsonValue::parse(text, doc, &err) || !doc.isObject()) {
        std::fprintf(stderr, "noc_speed: bad baseline '%s': %s\n",
                     path.c_str(), err.c_str());
        return 1;
    }
    const JsonValue *points = doc.find("points");
    if (!points || !points->isArray()) {
        std::fprintf(stderr,
                     "noc_speed: baseline '%s' has no points array\n",
                     path.c_str());
        return 1;
    }

    double tolerance = 0.15;
    if (const char *env = std::getenv("TENOC_SPEED_TOLERANCE")) {
        const double v = std::atof(env);
        if (v > 0.0 && v < 1.0)
            tolerance = v;
    }
    unsigned gate_dim = 32;
    if (const char *env = std::getenv("TENOC_MESH_GATE_DIM")) {
        const long v = std::atol(env);
        if (v >= 0)
            gate_dim = static_cast<unsigned>(v);
    }

    std::printf("\ncomparing against %s (tolerance -%.0f%%, gating "
                "dims >= %u):\n",
                path.c_str(), tolerance * 100.0, gate_dim);
    int failures = 0;
    unsigned matched = 0;
    for (const auto &[dim, load, rate] : current) {
        const JsonValue *base = nullptr;
        for (const JsonValue &bp : points->asArray()) {
            if (!bp.isObject())
                continue;
            const JsonValue *bdim = bp.find("dim");
            if (!bdim || !bdim->isNumber() ||
                static_cast<unsigned>(bdim->asNumber()) != dim)
                continue;
            const JsonValue *bload = bp.find("load");
            if (!bload || !bload->isNumber() ||
                bload->asNumber() != load)
                continue;
            base = &bp;
            break;
        }
        if (!base) {
            std::printf("  %3ux%-3u @%.2f: no baseline point, "
                        "skipped\n",
                        dim, dim, load);
            continue;
        }
        const JsonValue *brate = base->find("cycles_per_sec_per_router");
        if (!brate || !brate->isNumber() || brate->asNumber() <= 0.0)
            continue;
        ++matched;
        const double ratio = rate / brate->asNumber();
        const bool gated = dim >= gate_dim;
        const bool bad = gated && ratio < 1.0 - tolerance;
        std::printf("  %3ux%-3u @%.2f: %.3e vs %.3e router-cycles/s "
                    "(%+.1f%%)%s%s\n",
                    dim, dim, load, rate, brate->asNumber(),
                    (ratio - 1.0) * 100.0,
                    gated ? "" : "  [informational]",
                    bad ? "  REGRESSION" : "");
        if (bad)
            ++failures;
    }
    if (matched == 0) {
        std::fprintf(stderr, "noc_speed: no baseline points matched — "
                             "stale baseline file?\n");
        return 1;
    }
    if (failures != 0) {
        std::fprintf(stderr, "noc_speed: %d mesh point(s) regressed "
                             "more than %.0f%% in router-cycles/"
                             "second\n",
                     failures, tolerance * 100.0);
        return 1;
    }
    std::printf("  all %u matched point(s) within tolerance\n",
                matched);
    return 0;
}

int
runMeshSweep(bool huge, double scale, const std::string &compare_path,
             const std::string &topology)
{
    using telemetry::JsonValue;

    // Low-load scaling row at every dim, plus one saturated row
    // (0.4 flits/node/cycle) at the gate dim: low load exercises the
    // sleep-until-arrival scheduler, saturation the allocator and NI
    // hot paths — a regression in either shows up in its own row.
    const double LOAD = 0.1;
    const double HIGH_LOAD = 0.4;
    std::vector<unsigned> dims = {8, 16, 32, 64};
    if (huge)
        dims.push_back(128);

    std::printf("noc_speed --mesh-sweep: %.2f flits/node/cycle, "
                "8x8..%ux%u %s (scale %.2f), plus %.2f at 64x64\n",
                LOAD, dims.back(), dims.back(), topology.c_str(),
                scale, HIGH_LOAD);

    JsonValue doc = JsonValue::makeObject();
    doc.set("benchmark", JsonValue("noc_speed"));
    doc.set("mode", JsonValue("mesh_sweep"));
    doc.set("topology", JsonValue(topology));
    doc.set("load", JsonValue(LOAD));
    doc.set("scale", JsonValue(scale));
    JsonValue points = JsonValue::makeArray();
    std::vector<MeshRate> rates;
    std::vector<std::pair<unsigned, double>> rows;
    for (const unsigned dim : dims)
        rows.emplace_back(dim, LOAD);
    rows.emplace_back(64, HIGH_LOAD);
    for (const auto &[dim, load] : rows) {
        // Constant total router-cycles per point: the 64x64 budget of
        // 2000 cycles scales up as the mesh shrinks.
        const double budget = 2000.0 * scale * (64.0 * 64.0) /
                              (static_cast<double>(dim) * dim);
        const auto cycles =
            std::max<Cycle>(100, static_cast<Cycle>(budget));
        const auto pt = runPoint(true, load, cycles, 1, dim, topology);
        const auto routers = static_cast<double>(dim) * dim;
        const double per_router = pt.cyclesPerSec * routers;
        rates.push_back(MeshRate{dim, load, per_router});
        std::printf("  %3ux%-3u @%.2f %8llu cycles %12.3e cycles/s "
                    "%12.3e router-cycles/s (%.2fs wall)\n",
                    dim, dim, load,
                    static_cast<unsigned long long>(pt.cycles),
                    pt.cyclesPerSec, per_router, pt.wallSeconds);
        printProfile(pt.profile);

        JsonValue v = pointJson(pt);
        v.set("dim", JsonValue(std::uint64_t{dim}));
        v.set("routers",
              JsonValue(static_cast<std::uint64_t>(routers)));
        v.set("cycles_per_sec_per_router", JsonValue(per_router));
        points.push(v);
    }
    doc.set("points", points);
    std::ofstream os("BENCH_noc_speed.json");
    doc.write(os);
    os << "\n";
    std::printf("\nwrote BENCH_noc_speed.json\n");
    if (!compare_path.empty())
        return compareMeshBaseline(compare_path, rates);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tenoc;

    // TENOC_SCALE (or a positional number) shortens the run for CI
    // smoke tests; --threads-sweep [N] switches to the serial-vs-
    // parallel engine sweep (N cycle threads, default 8);
    // --mesh-sweep [--huge] to the 8x8..64x64 (..128x128) scaling
    // sweep; --topology mesh|torus|cmesh changes the sweep's link
    // structure; --compare FILE gates on a prior BENCH_noc_speed.json
    // of the same mode.
    double scale = envScale(1.0);
    bool threads_sweep = false;
    bool mesh_sweep = false;
    bool mesh_huge = false;
    unsigned sweep_threads = 8;
    std::string compare_path;
    std::string topology = "mesh";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--mesh-sweep") {
            mesh_sweep = true;
        } else if (arg == "--profile") {
            g_profile = true;
        } else if (arg == "--huge") {
            mesh_huge = true;
        } else if (arg == "--topology" && i + 1 < argc) {
            topology = argv[++i];
        } else if (arg == "--threads-sweep") {
            threads_sweep = true;
            if (i + 1 < argc) {
                const long t = std::atol(argv[i + 1]);
                if (t >= 1) {
                    sweep_threads = static_cast<unsigned>(t);
                    ++i;
                }
            }
        } else if (arg == "--compare" && i + 1 < argc) {
            compare_path = argv[++i];
        } else {
            const double v = std::atof(arg.c_str());
            if (v > 0.0)
                scale = v;
        }
    }
    if (mesh_sweep)
        return runMeshSweep(mesh_huge, scale, compare_path, topology);
    if (threads_sweep)
        return runThreadsSweep(sweep_threads, scale);
    const auto low_cycles =
        static_cast<Cycle>(200000 * scale);
    const auto sat_cycles =
        static_cast<Cycle>(50000 * scale);

    std::printf("noc_speed: 6x6 baseline mesh, idle-skip vs "
                "full-tick scheduler (scale %.2f)\n", scale);

    const double LOW_LOAD = 0.005;
    const double SAT_LOAD = 0.20; // far past many-to-few saturation
    const auto low_ref = runPoint(false, LOW_LOAD, low_cycles);
    const auto low_skip = runPoint(true, LOW_LOAD, low_cycles);
    const auto sat_ref = runPoint(false, SAT_LOAD, sat_cycles);
    const auto sat_skip = runPoint(true, SAT_LOAD, sat_cycles);

    // Both modes ran the identical seeded workload; any statistical
    // divergence means the idle-skip scheduler is broken.
    if (low_ref.hops != low_skip.hops ||
        low_ref.packets != low_skip.packets ||
        sat_ref.hops != sat_skip.hops ||
        sat_ref.packets != sat_skip.packets) {
        std::fprintf(stderr, "noc_speed: idle-skip diverged from the "
                             "reference scheduler!\n");
        return 1;
    }

    std::printf("\nlow load (%.3f flits/node/cycle):\n", LOW_LOAD);
    printPoint("", low_ref);
    printPoint("", low_skip);
    const double low_speedup = low_ref.cyclesPerSec > 0.0
        ? low_skip.cyclesPerSec / low_ref.cyclesPerSec : 0.0;
    std::printf("  idle-skip speedup: %.2fx\n", low_speedup);

    std::printf("\nsaturation (offered %.2f flits/node/cycle):\n",
                SAT_LOAD);
    printPoint("", sat_ref);
    printPoint("", sat_skip);
    const double sat_speedup = sat_ref.cyclesPerSec > 0.0
        ? sat_skip.cyclesPerSec / sat_ref.cyclesPerSec : 0.0;
    std::printf("  idle-skip speedup: %.2fx\n", sat_speedup);

    using telemetry::JsonValue;
    JsonValue doc = JsonValue::makeObject();
    doc.set("benchmark", JsonValue("noc_speed"));
    doc.set("topology", JsonValue("6x6"));
    doc.set("scale", JsonValue(scale));
    JsonValue points = JsonValue::makeArray();
    for (const auto &pt : {low_ref, low_skip, sat_ref, sat_skip})
        points.push(pointJson(pt));
    doc.set("points", points);
    doc.set("low_load_speedup", JsonValue(low_speedup));
    doc.set("saturation_speedup", JsonValue(sat_speedup));
    std::ofstream os("BENCH_noc_speed.json");
    doc.write(os);
    os << "\n";
    std::printf("\nwrote BENCH_noc_speed.json\n");
    if (!compare_path.empty())
        return compareBaseline(compare_path,
                               {low_ref, low_skip, sat_ref, sat_skip});
    return 0;
}
