/**
 * @file
 * Fleet client: builds job specs from flags and hands them to a
 * tenoc_server (docs/fleet.md).
 *
 * Job construction:
 *   --config FILE         base config file for every job
 *   --workload ABBR       Table I abbreviation (required)
 *   --scale X             kernel-length scale factor
 *   --cycles N            interconnect cycle budget
 *   --timeout SECONDS     per-job wall-clock kill
 *   --set key=value       override (repeatable; applies to every job)
 *   --sweep key=v1,v2,v3  one job per value (repeatable flags multiply
 *                         into a full cross product)
 *
 * Delivery (pick one):
 *   --connect SOCK        SUBMIT/RUN over a tenoc_server socket and
 *                         print each RESULT line (connect is retried
 *                         with backoff while the server comes up, and
 *                         --telem echoes live TELEM frames to stderr)
 *   --spool DIR           drop a spec file into a server spool dir
 *   --out FILE            just write the spec file (inspect, CI, ...)
 */

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "fleet/job.hh"
#include "telemetry/json.hh"

namespace
{

using tenoc::fleet::JobSpec;
using tenoc::telemetry::JsonValue;

int
usage()
{
    std::cerr <<
        "usage: tenoc_client --workload ABBR"
        " (--connect SOCK | --spool DIR | --out FILE)\n"
        "                    [--config FILE] [--scale X] [--cycles N]"
        " [--timeout SECONDS]\n"
        "                    [--set key=value]... [--sweep"
        " key=v1,v2,...]...\n"
        "                    [--connect-retries N] [--telem]\n";
    return 2;
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        out.push_back(item);
    return out;
}

bool
splitKeyValue(const std::string &s, std::string &key, std::string &val)
{
    const auto eq = s.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    key = s.substr(0, eq);
    val = s.substr(eq + 1);
    return true;
}

/** Expands the sweep axes into the cross product of jobs. */
std::vector<JobSpec>
expandJobs(const JobSpec &base,
           const std::vector<std::pair<std::string,
                                       std::vector<std::string>>> &axes)
{
    std::vector<JobSpec> jobs{base};
    for (const auto &[key, values] : axes) {
        std::vector<JobSpec> next;
        for (const auto &job : jobs) {
            for (const auto &value : values) {
                JobSpec j = job;
                j.overrides.set(key, value);
                j.name = j.name.empty() ? key + "=" + value
                                        : j.name + "," + key + "=" +
                                              value;
                next.push_back(std::move(j));
            }
        }
        jobs = std::move(next);
    }
    return jobs;
}

std::string
specText(const std::vector<JobSpec> &jobs)
{
    JsonValue doc = JsonValue::makeObject();
    JsonValue arr = JsonValue::makeArray();
    for (const auto &job : jobs)
        arr.push(tenoc::fleet::jobToJson(job));
    doc.set("jobs", std::move(arr));
    return doc.toString(2) + "\n";
}

/**
 * Connects to the server socket, retrying with linear backoff while
 * the server is still coming up (or a chaos monkey dropped us at
 * accept).  @return the connected fd, or -1 after the retry budget.
 */
int
connectWithRetry(const std::string &sock_path, unsigned retries)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (sock_path.size() >= sizeof(addr.sun_path)) {
        std::cerr << "tenoc_client: socket path too long\n";
        return -1;
    }
    std::strncpy(addr.sun_path, sock_path.c_str(),
                 sizeof(addr.sun_path) - 1);

    for (unsigned attempt = 0;; ++attempt) {
        const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            std::cerr << "tenoc_client: socket failed\n";
            return -1;
        }
        int rc;
        do {
            rc = connect(fd, reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr));
        } while (rc != 0 && errno == EINTR);
        if (rc == 0)
            return fd;
        close(fd);
        // ECONNREFUSED/ENOENT: server not (re)started yet — its
        // socket appears only once it is accepting.
        const bool transient =
            errno == ECONNREFUSED || errno == ENOENT;
        if (!transient || attempt >= retries) {
            std::cerr << "tenoc_client: cannot connect to '"
                      << sock_path << "': " << std::strerror(errno)
                      << "\n";
            return -1;
        }
        timespec nap{0, 0};
        nap.tv_nsec = 100'000'000L * static_cast<long>(
                          std::min(attempt + 1U, 5U)); // 0.1s..0.5s
        nanosleep(&nap, nullptr);
    }
}

int
deliverSocket(const std::string &sock_path,
              const std::vector<JobSpec> &jobs, unsigned retries,
              bool show_telem)
{
    signal(SIGPIPE, SIG_IGN); // report a vanished server, don't die

    const int fd = connectWithRetry(sock_path, retries);
    if (fd < 0)
        return 1;

    std::string request;
    for (const auto &job : jobs)
        request +=
            "SUBMIT " + tenoc::fleet::jobToJson(job).toString(0) + "\n";
    request += "RUN\n";
    std::size_t off = 0;
    while (off < request.size()) {
        const ssize_t n =
            write(fd, request.data() + off, request.size() - off);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            std::cerr << "tenoc_client: short write to server\n";
            close(fd);
            return 1;
        }
        off += static_cast<std::size_t>(n);
    }

    // Stream replies until DONE; RESULT payloads go to stdout, TELEM
    // frames (live worker heartbeats) to stderr when asked for.
    std::string buf;
    char chunk[4096];
    bool done = false, any_error = false;
    while (!done) {
        const ssize_t n = read(fd, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        buf.append(chunk, static_cast<std::size_t>(n));
        std::size_t nl;
        while ((nl = buf.find('\n')) != std::string::npos) {
            const std::string line = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            if (line.rfind("RESULT ", 0) == 0) {
                std::cout << line.substr(7) << "\n";
            } else if (line.rfind("TELEM ", 0) == 0) {
                if (show_telem)
                    std::cerr << line << "\n";
            } else if (line.rfind("ERROR ", 0) == 0) {
                std::cerr << "tenoc_client: server: "
                          << line.substr(6) << "\n";
                any_error = true;
            } else if (line == "DONE") {
                done = true;
                break;
            }
        }
    }
    close(fd);
    if (!done) {
        std::cerr << "tenoc_client: connection closed before DONE\n";
        return 1;
    }
    return any_error ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    JobSpec base;
    std::vector<std::pair<std::string, std::vector<std::string>>> axes;
    std::string sock, spool, out;
    unsigned connect_retries = 10;
    bool show_telem = false;

    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::cerr << "tenoc_client: " << argv[i]
                      << " needs a value\n";
            return nullptr;
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *v = nullptr;
        if (std::strcmp(arg, "--config") == 0 && (v = value(i))) {
            base.configFile = v;
        } else if (std::strcmp(arg, "--workload") == 0 &&
                   (v = value(i))) {
            base.workload = v;
        } else if (std::strcmp(arg, "--scale") == 0 && (v = value(i))) {
            base.scale = std::atof(v);
        } else if (std::strcmp(arg, "--cycles") == 0 &&
                   (v = value(i))) {
            base.maxIcntCycles =
                static_cast<tenoc::Cycle>(std::atoll(v));
        } else if (std::strcmp(arg, "--timeout") == 0 &&
                   (v = value(i))) {
            base.timeoutSeconds =
                static_cast<unsigned>(std::atol(v));
        } else if (std::strcmp(arg, "--set") == 0 && (v = value(i))) {
            std::string key, val;
            if (!splitKeyValue(v, key, val))
                return usage();
            base.overrides.set(key, val);
        } else if (std::strcmp(arg, "--sweep") == 0 && (v = value(i))) {
            std::string key, vals;
            if (!splitKeyValue(v, key, vals))
                return usage();
            axes.emplace_back(key, splitCommas(vals));
        } else if (std::strcmp(arg, "--connect") == 0 &&
                   (v = value(i))) {
            sock = v;
        } else if (std::strcmp(arg, "--connect-retries") == 0 &&
                   (v = value(i))) {
            connect_retries = static_cast<unsigned>(std::atol(v));
        } else if (std::strcmp(arg, "--telem") == 0) {
            show_telem = true;
        } else if (std::strcmp(arg, "--spool") == 0 && (v = value(i))) {
            spool = v;
        } else if (std::strcmp(arg, "--out") == 0 && (v = value(i))) {
            out = v;
        } else {
            return usage();
        }
    }

    if (base.workload.empty())
        return usage();
    const int sinks = (sock.empty() ? 0 : 1) + (spool.empty() ? 0 : 1) +
                      (out.empty() ? 0 : 1);
    if (sinks != 1)
        return usage();

    const std::vector<JobSpec> jobs = expandJobs(base, axes);

    if (!sock.empty())
        return deliverSocket(sock, jobs, connect_retries, show_telem);

    const std::string text = specText(jobs);
    std::string path = out;
    if (!spool.empty()) {
        // Write-then-rename so the spool scanner never reads a torn
        // spec.  Create the spool so drops work before the server is
        // up (it scans whatever exists when it starts).
        std::error_code ec;
        std::filesystem::create_directories(spool, ec);
        path = spool + "/spec-" + std::to_string(getpid()) + ".json";
        const std::string tmp = path + ".tmp";
        std::ofstream os(tmp);
        if (!os) {
            std::cerr << "tenoc_client: cannot write '" << tmp << "'\n";
            return 1;
        }
        os << text;
        os.close();
        if (std::rename(tmp.c_str(), path.c_str()) != 0) {
            std::cerr << "tenoc_client: cannot move spec into '"
                      << spool << "'\n";
            return 1;
        }
    } else {
        std::ofstream os(path);
        if (!os) {
            std::cerr << "tenoc_client: cannot write '" << path
                      << "'\n";
            return 1;
        }
        os << text;
        if (!os)
            return 1;
    }
    std::cerr << "tenoc_client: wrote " << jobs.size() << " job(s) to "
              << path << "\n";
    return 0;
}
