/**
 * @file
 * Seeded configuration fuzzer for the differential-testing harness
 * (src/noc/golden/).  Samples legal network configurations, runs the
 * full oracle battery on each, and on failure writes a *minimized*
 * repro config so it can be checked into tests/corpus/ and replayed by
 * the test suite forever.
 *
 * Usage:
 *   fuzz_diff [--configs N] [--seed S] [--out DIR] [--thorough]
 *             [--replay FILE]... [FILE]...
 *
 * Bare FILE operands are replay files as well, so find/xargs can batch
 * them: `find tests/corpus -name '*.cfg' -exec fuzz_diff --replay {} +`.
 *
 * Exit status: 0 when every config passes, 1 on any violation (or
 * usage error).  CI runs `fuzz_diff --configs 50 --seed <PR number>`
 * as a smoke job so every PR fuzzes a distinct slice of the space.
 */

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "noc/golden/diff.hh"

namespace
{

void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--configs N] [--seed S] [--out DIR] [--thorough]"
                 " [--replay FILE]... [FILE]...\n";
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

void
printViolations(const tenoc::DiffReport &rep)
{
    for (const std::string &v : rep.violations)
        std::cerr << "    " << v << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned configs = 100;
    std::uint64_t seed = 1;
    std::string out_dir = "tests/corpus";
    tenoc::DiffOptions opts;
    std::vector<std::string> replays;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--configs") {
            configs = static_cast<unsigned>(std::strtoul(next(), nullptr, 0));
        } else if (arg == "--seed") {
            seed = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--out") {
            out_dir = next();
        } else if (arg == "--thorough") {
            opts.thorough = true;
        } else if (arg == "--replay") {
            replays.emplace_back(next());
        } else if (!arg.empty() && arg[0] != '-') {
            // Bare operands are replay files too, so xargs/find-style
            // invocations (`find ... -exec fuzz_diff --replay {} +`)
            // hand every file to one process.
            replays.emplace_back(arg);
        } else {
            usage(argv[0]);
            return 1;
        }
    }

    unsigned failures = 0;

    // Replay mode: run the oracle battery on explicit corpus files.
    for (const std::string &path : replays) {
        std::string text, err;
        tenoc::DiffConfig cfg;
        if (!readFile(path, text)) {
            std::cerr << "fuzz_diff: cannot read " << path << "\n";
            return 1;
        }
        if (!tenoc::DiffConfig::parse(text, cfg, &err)) {
            std::cerr << "fuzz_diff: " << path << ": " << err << "\n";
            return 1;
        }
        const tenoc::DiffReport rep = tenoc::runDiff(cfg, opts);
        if (rep.ok()) {
            std::cout << "replay PASS " << path << "\n";
        } else {
            ++failures;
            std::cerr << "replay FAIL " << path << ":\n";
            printViolations(rep);
        }
    }
    if (!replays.empty()) {
        return failures == 0 ? 0 : 1;
    }

    tenoc::Rng sampler(tenoc::deriveStreamSeed(seed, 0xd1ffULL));
    for (unsigned i = 0; i < configs; ++i) {
        const tenoc::DiffConfig cfg = tenoc::sampleDiffConfig(sampler);
        const tenoc::DiffReport rep = tenoc::runDiff(cfg, opts);
        if (rep.ok()) {
            std::cout << "config " << (i + 1) << "/" << configs
                      << " ok\n";
            continue;
        }

        ++failures;
        std::cerr << "config " << (i + 1) << "/" << configs
                  << " FAILED (" << rep.violations.size()
                  << " violations):\n";
        printViolations(rep);

        // Shrink and persist a repro for the corpus.
        const tenoc::DiffConfig minimal =
            tenoc::minimizeConfig(cfg, opts);
        std::error_code ec;
        std::filesystem::create_directories(out_dir, ec);
        std::ostringstream name;
        name << "repro_seed" << seed << "_cfg" << i << ".cfg";
        const std::filesystem::path path =
            std::filesystem::path(out_dir) / name.str();
        std::ofstream out(path);
        out << "# fuzz_diff repro: --seed " << seed << ", config #"
            << i << ", minimized\n";
        const tenoc::DiffReport minimal_rep =
            tenoc::runDiff(minimal, opts);
        for (const std::string &v : minimal_rep.violations)
            out << "# violation: " << v << "\n";
        out << minimal.serialize();
        std::cerr << "  minimized repro written to " << path.string()
                  << "\n";
    }

    if (failures == 0) {
        std::cout << "fuzz_diff: all " << configs
                  << " configs passed the oracle battery\n";
        return 0;
    }
    std::cerr << "fuzz_diff: " << failures << "/" << configs
              << " configs failed\n";
    return 1;
}
