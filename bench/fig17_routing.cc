/**
 * @file
 * Figure 17: checkerboard routing with half-routers (CP CR 4VC) and
 * DOR with 4 VCs, both relative to DOR with 2 VCs (all with
 * checkerboard placement).  The point: halving router connectivity
 * costs ~1% performance while cutting router area 14%.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace tenoc;
    using namespace tenoc::bench;

    banner("Figure 17 - checkerboard routing vs DOR",
           "CP-CR-4VC within ~1.1% of CP-DOR-2VC");
    const double scale = scaleFromArgs(argc, argv);

    const auto runs = suites({ConfigId::CP_DOR_2VC,
                              ConfigId::CP_DOR_4VC,
                              ConfigId::CP_CR_4VC}, scale);
    const auto &dor2 = runs[0];
    const auto &dor4 = runs[1];
    const auto &cr4 = runs[2];

    const auto sp4 = speedups(dor2, dor4);
    const auto spc = speedups(dor2, cr4);
    std::printf("\n%-6s %-6s %14s %14s\n", "bench", "class",
                "CP-DOR-4VC", "CP-CR-4VC");
    for (std::size_t i = 0; i < dor2.size(); ++i) {
        std::printf("%-6s %-6s %14s %14s\n", dor2[i].abbr.c_str(),
                    trafficClassName(dor2[i].cls),
                    pct(sp4[i]).c_str(), pct(spc[i]).c_str());
    }
    std::printf("%-6s %-6s %14s %14s  (harmonic means; paper: CR "
                "-1.1%%)\n", "HM", "all",
                pct(harmonicMeanSpeedup(dor2, dor4)).c_str(),
                pct(harmonicMeanSpeedup(dor2, cr4)).c_str());

    std::printf("\nrouter-area payoff (Table VI): CP-CR routers "
                "59.2 mm^2 vs 69.0 mm^2 all-full baseline (-14.2%%).\n");
    return 0;
}
