/**
 * @file
 * Figure 20 (and the Sec. V-F headline): the combined
 * throughput-effective design - checkerboard placement + checkerboard
 * routing + dedicated double network + 2 injection ports at MCs -
 * versus the top-bottom DOR baseline, plus IPC per mm^2.
 *
 * We additionally report the single-network variant (CP + CR + 2
 * injection ports, no channel slicing), which is the
 * throughput-effective sweet spot of our flit-accurate model (see
 * EXPERIMENTS.md for the analysis of the difference).
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace tenoc;
    using namespace tenoc::bench;

    banner("Figure 20 + headline - combined throughput-effective design",
           "+17% HM IPC; +25.4% IPC/mm^2 vs the balanced mesh");
    const double scale = scaleFromArgs(argc, argv);

    const auto runs = suites({ConfigId::BASELINE_TB_DOR,
                              ConfigId::THROUGHPUT_EFFECTIVE,
                              ConfigId::CP_CR_2INJ_SINGLE,
                              ConfigId::PERFECT}, scale);
    const auto &base = runs[0];
    const auto &thr = runs[1];
    const auto &sgl = runs[2];
    const auto &perf = runs[3];

    const auto spt = speedups(base, thr);
    const auto sps = speedups(base, sgl);
    std::printf("\n%-6s %-6s %20s %24s\n", "bench", "class",
                "Thr.Eff. (paper cfg)", "CP+CR+2P single (ours)");
    for (std::size_t i = 0; i < base.size(); ++i) {
        std::printf("%-6s %-6s %20s %24s\n", base[i].abbr.c_str(),
                    trafficClassName(base[i].cls), pct(spt[i]).c_str(),
                    pct(sps[i]).c_str());
    }
    const double hm_thr = harmonicMeanSpeedup(base, thr);
    const double hm_sgl = harmonicMeanSpeedup(base, sgl);
    const double hm_perf = harmonicMeanSpeedup(base, perf);
    std::printf("%-6s %-6s %20s %24s  (harmonic means)\n", "HM", "all",
                pct(hm_thr).c_str(), pct(hm_sgl).c_str());
    std::printf("\nperfect-NoC HM speedup: %s (paper: +36%%; the "
                "combined design captures roughly half of it)\n",
                pct(hm_perf).c_str());

    // Headline: throughput-effectiveness (IPC/mm^2).
    const double base_area = chipAreaFor(ConfigId::BASELINE_TB_DOR);
    const double thr_area = chipAreaFor(ConfigId::THROUGHPUT_EFFECTIVE);
    const double sgl_area = chipAreaFor(ConfigId::CP_CR_2INJ_SINGLE);
    const double base_eff =
        throughputEffectiveness(harmonicMeanIpc(base), base_area);
    const double thr_eff =
        throughputEffectiveness(harmonicMeanIpc(thr), thr_area);
    const double sgl_eff =
        throughputEffectiveness(harmonicMeanIpc(sgl), sgl_area);

    std::printf("\n%-30s %10s %12s %12s %16s\n", "design", "HM IPC",
                "chip [mm^2]", "IPC/mm^2", "vs baseline");
    std::printf("%-30s %10.1f %12.1f %12.5f %16s\n", "Balanced mesh",
                harmonicMeanIpc(base), base_area, base_eff, "-");
    std::printf("%-30s %10.1f %12.1f %12.5f %16s\n",
                "Thr.Eff. (paper config)", harmonicMeanIpc(thr),
                thr_area, thr_eff, pct(thr_eff / base_eff).c_str());
    std::printf("%-30s %10.1f %12.1f %12.5f %16s\n",
                "CP+CR+2P single (ours)", harmonicMeanIpc(sgl),
                sgl_area, sgl_eff, pct(sgl_eff / base_eff).c_str());
    std::printf("\npaper headline: +25.4%% IPC/mm^2 (IPC +17%%, chip "
                "area 576 -> 537.4 mm^2).\n");
    return 0;
}
