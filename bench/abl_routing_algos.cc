/**
 * @file
 * Ablation: oblivious routing algorithms under the accelerator's
 * many-to-few-to-many traffic (open loop).  The paper relates
 * checkerboard routing to O1Turn (VC usage) and ROMM (two-phase
 * randomization, Sec. VI); this harness compares them head to head,
 * plus Valiant's non-minimal scheme.
 */

#include "common.hh"
#include "noc/openloop.hh"

int
main()
{
    using namespace tenoc;
    using namespace tenoc::bench;

    banner("Ablation - oblivious routing algorithms (open loop)",
           "CR = ROMM restricted to full-router waypoints; O1Turn "
           "motivates its VC usage (Sec. VI)");

    struct Algo
    {
        const char *name;
        const char *routing;
        bool checkerboard;
    };
    const Algo algos[] = {
        {"XY DOR", "xy", false},
        {"YX DOR", "yx", false},
        {"O1Turn", "o1turn", false},
        {"ROMM", "romm", false},
        {"Valiant", "valiant", false},
        {"Checkerboard (half routers)", "cr", true},
    };

    struct Point
    {
        double lat3 = 0.0;
        double lat6 = 0.0;
        double sat = 0.0;
    };
    const auto points = sweepMap(std::size(algos), [&](std::size_t i) {
        const Algo &a = algos[i];
        OpenLoopParams p;
        p.seed = 99;
        p.net.routing = a.routing;
        p.net.topo.placement = McPlacement::CHECKERBOARD;
        p.net.topo.checkerboardRouters = a.checkerboard;
        Point pt;
        p.injectionRate = 0.03;
        pt.lat3 = runOpenLoop(p).avgLatency;
        p.injectionRate = 0.06;
        pt.lat6 = runOpenLoop(p).avgLatency;
        const auto sweep = sweepOpenLoop(p, 0.02, 0.01, 0.15);
        pt.sat = 0.15;
        if (!sweep.empty() && sweep.back().saturated)
            pt.sat = sweep.back().offeredLoad;
        return pt;
    });

    std::printf("\n%-30s %14s %14s %16s\n", "algorithm", "lat @0.03",
                "lat @0.06", "saturation rate");
    for (std::size_t i = 0; i < std::size(algos); ++i) {
        std::printf("%-30s %14.1f %14.1f %16.3f\n", algos[i].name,
                    points[i].lat3, points[i].lat6, points[i].sat);
    }
    std::printf("\nexpected: the minimal schemes saturate together "
                "(terminal-bandwidth-bound many-to-few traffic); "
                "Valiant pays extra hops for no benefit here; "
                "checkerboard matches the full-router schemes while "
                "using half the router area.\n");
    return 0;
}
