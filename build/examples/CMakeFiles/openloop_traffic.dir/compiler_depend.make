# Empty compiler generated dependencies file for openloop_traffic.
# This may be replaced when dependencies are built.
