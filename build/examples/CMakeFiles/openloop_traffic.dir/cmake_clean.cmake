file(REMOVE_RECURSE
  "CMakeFiles/openloop_traffic.dir/openloop_traffic.cpp.o"
  "CMakeFiles/openloop_traffic.dir/openloop_traffic.cpp.o.d"
  "openloop_traffic"
  "openloop_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openloop_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
