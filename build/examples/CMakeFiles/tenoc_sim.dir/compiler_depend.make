# Empty compiler generated dependencies file for tenoc_sim.
# This may be replaced when dependencies are built.
