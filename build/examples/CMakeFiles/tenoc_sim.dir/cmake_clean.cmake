file(REMOVE_RECURSE
  "CMakeFiles/tenoc_sim.dir/tenoc_sim.cpp.o"
  "CMakeFiles/tenoc_sim.dir/tenoc_sim.cpp.o.d"
  "tenoc_sim"
  "tenoc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tenoc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
