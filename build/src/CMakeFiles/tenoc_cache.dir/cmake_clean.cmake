file(REMOVE_RECURSE
  "CMakeFiles/tenoc_cache.dir/cache/cache.cc.o"
  "CMakeFiles/tenoc_cache.dir/cache/cache.cc.o.d"
  "CMakeFiles/tenoc_cache.dir/cache/mshr.cc.o"
  "CMakeFiles/tenoc_cache.dir/cache/mshr.cc.o.d"
  "libtenoc_cache.a"
  "libtenoc_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tenoc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
