file(REMOVE_RECURSE
  "libtenoc_cache.a"
)
