# Empty compiler generated dependencies file for tenoc_cache.
# This may be replaced when dependencies are built.
