file(REMOVE_RECURSE
  "libtenoc_common.a"
)
