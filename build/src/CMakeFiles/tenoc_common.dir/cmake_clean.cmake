file(REMOVE_RECURSE
  "CMakeFiles/tenoc_common.dir/common/clock.cc.o"
  "CMakeFiles/tenoc_common.dir/common/clock.cc.o.d"
  "CMakeFiles/tenoc_common.dir/common/config.cc.o"
  "CMakeFiles/tenoc_common.dir/common/config.cc.o.d"
  "CMakeFiles/tenoc_common.dir/common/log.cc.o"
  "CMakeFiles/tenoc_common.dir/common/log.cc.o.d"
  "CMakeFiles/tenoc_common.dir/common/rng.cc.o"
  "CMakeFiles/tenoc_common.dir/common/rng.cc.o.d"
  "CMakeFiles/tenoc_common.dir/common/stats.cc.o"
  "CMakeFiles/tenoc_common.dir/common/stats.cc.o.d"
  "libtenoc_common.a"
  "libtenoc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tenoc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
