# Empty dependencies file for tenoc_common.
# This may be replaced when dependencies are built.
