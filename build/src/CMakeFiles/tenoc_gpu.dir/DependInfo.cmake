
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/coalescer.cc" "src/CMakeFiles/tenoc_gpu.dir/gpu/coalescer.cc.o" "gcc" "src/CMakeFiles/tenoc_gpu.dir/gpu/coalescer.cc.o.d"
  "/root/repo/src/gpu/inst_source.cc" "src/CMakeFiles/tenoc_gpu.dir/gpu/inst_source.cc.o" "gcc" "src/CMakeFiles/tenoc_gpu.dir/gpu/inst_source.cc.o.d"
  "/root/repo/src/gpu/kernel_profile.cc" "src/CMakeFiles/tenoc_gpu.dir/gpu/kernel_profile.cc.o" "gcc" "src/CMakeFiles/tenoc_gpu.dir/gpu/kernel_profile.cc.o.d"
  "/root/repo/src/gpu/simt_core.cc" "src/CMakeFiles/tenoc_gpu.dir/gpu/simt_core.cc.o" "gcc" "src/CMakeFiles/tenoc_gpu.dir/gpu/simt_core.cc.o.d"
  "/root/repo/src/gpu/warp.cc" "src/CMakeFiles/tenoc_gpu.dir/gpu/warp.cc.o" "gcc" "src/CMakeFiles/tenoc_gpu.dir/gpu/warp.cc.o.d"
  "/root/repo/src/gpu/workloads.cc" "src/CMakeFiles/tenoc_gpu.dir/gpu/workloads.cc.o" "gcc" "src/CMakeFiles/tenoc_gpu.dir/gpu/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tenoc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tenoc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tenoc_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
