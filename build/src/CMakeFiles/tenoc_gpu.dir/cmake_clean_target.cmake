file(REMOVE_RECURSE
  "libtenoc_gpu.a"
)
