file(REMOVE_RECURSE
  "CMakeFiles/tenoc_gpu.dir/gpu/coalescer.cc.o"
  "CMakeFiles/tenoc_gpu.dir/gpu/coalescer.cc.o.d"
  "CMakeFiles/tenoc_gpu.dir/gpu/inst_source.cc.o"
  "CMakeFiles/tenoc_gpu.dir/gpu/inst_source.cc.o.d"
  "CMakeFiles/tenoc_gpu.dir/gpu/kernel_profile.cc.o"
  "CMakeFiles/tenoc_gpu.dir/gpu/kernel_profile.cc.o.d"
  "CMakeFiles/tenoc_gpu.dir/gpu/simt_core.cc.o"
  "CMakeFiles/tenoc_gpu.dir/gpu/simt_core.cc.o.d"
  "CMakeFiles/tenoc_gpu.dir/gpu/warp.cc.o"
  "CMakeFiles/tenoc_gpu.dir/gpu/warp.cc.o.d"
  "CMakeFiles/tenoc_gpu.dir/gpu/workloads.cc.o"
  "CMakeFiles/tenoc_gpu.dir/gpu/workloads.cc.o.d"
  "libtenoc_gpu.a"
  "libtenoc_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tenoc_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
