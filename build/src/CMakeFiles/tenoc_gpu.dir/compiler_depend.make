# Empty compiler generated dependencies file for tenoc_gpu.
# This may be replaced when dependencies are built.
