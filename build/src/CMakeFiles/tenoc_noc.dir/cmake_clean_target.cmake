file(REMOVE_RECURSE
  "libtenoc_noc.a"
)
