
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/buffer.cc" "src/CMakeFiles/tenoc_noc.dir/noc/buffer.cc.o" "gcc" "src/CMakeFiles/tenoc_noc.dir/noc/buffer.cc.o.d"
  "/root/repo/src/noc/flit.cc" "src/CMakeFiles/tenoc_noc.dir/noc/flit.cc.o" "gcc" "src/CMakeFiles/tenoc_noc.dir/noc/flit.cc.o.d"
  "/root/repo/src/noc/ideal_network.cc" "src/CMakeFiles/tenoc_noc.dir/noc/ideal_network.cc.o" "gcc" "src/CMakeFiles/tenoc_noc.dir/noc/ideal_network.cc.o.d"
  "/root/repo/src/noc/mesh_network.cc" "src/CMakeFiles/tenoc_noc.dir/noc/mesh_network.cc.o" "gcc" "src/CMakeFiles/tenoc_noc.dir/noc/mesh_network.cc.o.d"
  "/root/repo/src/noc/network_interface.cc" "src/CMakeFiles/tenoc_noc.dir/noc/network_interface.cc.o" "gcc" "src/CMakeFiles/tenoc_noc.dir/noc/network_interface.cc.o.d"
  "/root/repo/src/noc/openloop.cc" "src/CMakeFiles/tenoc_noc.dir/noc/openloop.cc.o" "gcc" "src/CMakeFiles/tenoc_noc.dir/noc/openloop.cc.o.d"
  "/root/repo/src/noc/router.cc" "src/CMakeFiles/tenoc_noc.dir/noc/router.cc.o" "gcc" "src/CMakeFiles/tenoc_noc.dir/noc/router.cc.o.d"
  "/root/repo/src/noc/routing.cc" "src/CMakeFiles/tenoc_noc.dir/noc/routing.cc.o" "gcc" "src/CMakeFiles/tenoc_noc.dir/noc/routing.cc.o.d"
  "/root/repo/src/noc/topology.cc" "src/CMakeFiles/tenoc_noc.dir/noc/topology.cc.o" "gcc" "src/CMakeFiles/tenoc_noc.dir/noc/topology.cc.o.d"
  "/root/repo/src/noc/traffic.cc" "src/CMakeFiles/tenoc_noc.dir/noc/traffic.cc.o" "gcc" "src/CMakeFiles/tenoc_noc.dir/noc/traffic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tenoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
