# Empty dependencies file for tenoc_noc.
# This may be replaced when dependencies are built.
