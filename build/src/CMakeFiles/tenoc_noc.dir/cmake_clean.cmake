file(REMOVE_RECURSE
  "CMakeFiles/tenoc_noc.dir/noc/buffer.cc.o"
  "CMakeFiles/tenoc_noc.dir/noc/buffer.cc.o.d"
  "CMakeFiles/tenoc_noc.dir/noc/flit.cc.o"
  "CMakeFiles/tenoc_noc.dir/noc/flit.cc.o.d"
  "CMakeFiles/tenoc_noc.dir/noc/ideal_network.cc.o"
  "CMakeFiles/tenoc_noc.dir/noc/ideal_network.cc.o.d"
  "CMakeFiles/tenoc_noc.dir/noc/mesh_network.cc.o"
  "CMakeFiles/tenoc_noc.dir/noc/mesh_network.cc.o.d"
  "CMakeFiles/tenoc_noc.dir/noc/network_interface.cc.o"
  "CMakeFiles/tenoc_noc.dir/noc/network_interface.cc.o.d"
  "CMakeFiles/tenoc_noc.dir/noc/openloop.cc.o"
  "CMakeFiles/tenoc_noc.dir/noc/openloop.cc.o.d"
  "CMakeFiles/tenoc_noc.dir/noc/router.cc.o"
  "CMakeFiles/tenoc_noc.dir/noc/router.cc.o.d"
  "CMakeFiles/tenoc_noc.dir/noc/routing.cc.o"
  "CMakeFiles/tenoc_noc.dir/noc/routing.cc.o.d"
  "CMakeFiles/tenoc_noc.dir/noc/topology.cc.o"
  "CMakeFiles/tenoc_noc.dir/noc/topology.cc.o.d"
  "CMakeFiles/tenoc_noc.dir/noc/traffic.cc.o"
  "CMakeFiles/tenoc_noc.dir/noc/traffic.cc.o.d"
  "libtenoc_noc.a"
  "libtenoc_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tenoc_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
