# Empty compiler generated dependencies file for tenoc_accel.
# This may be replaced when dependencies are built.
