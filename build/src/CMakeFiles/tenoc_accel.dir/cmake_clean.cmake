file(REMOVE_RECURSE
  "CMakeFiles/tenoc_accel.dir/accel/chip.cc.o"
  "CMakeFiles/tenoc_accel.dir/accel/chip.cc.o.d"
  "CMakeFiles/tenoc_accel.dir/accel/chip_config.cc.o"
  "CMakeFiles/tenoc_accel.dir/accel/chip_config.cc.o.d"
  "CMakeFiles/tenoc_accel.dir/accel/experiments.cc.o"
  "CMakeFiles/tenoc_accel.dir/accel/experiments.cc.o.d"
  "CMakeFiles/tenoc_accel.dir/accel/mc_node.cc.o"
  "CMakeFiles/tenoc_accel.dir/accel/mc_node.cc.o.d"
  "CMakeFiles/tenoc_accel.dir/accel/metrics.cc.o"
  "CMakeFiles/tenoc_accel.dir/accel/metrics.cc.o.d"
  "libtenoc_accel.a"
  "libtenoc_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tenoc_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
