file(REMOVE_RECURSE
  "libtenoc_accel.a"
)
