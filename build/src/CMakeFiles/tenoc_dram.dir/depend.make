# Empty dependencies file for tenoc_dram.
# This may be replaced when dependencies are built.
