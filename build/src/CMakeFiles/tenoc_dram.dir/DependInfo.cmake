
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/dram_bank.cc" "src/CMakeFiles/tenoc_dram.dir/dram/dram_bank.cc.o" "gcc" "src/CMakeFiles/tenoc_dram.dir/dram/dram_bank.cc.o.d"
  "/root/repo/src/dram/dram_channel.cc" "src/CMakeFiles/tenoc_dram.dir/dram/dram_channel.cc.o" "gcc" "src/CMakeFiles/tenoc_dram.dir/dram/dram_channel.cc.o.d"
  "/root/repo/src/dram/frfcfs.cc" "src/CMakeFiles/tenoc_dram.dir/dram/frfcfs.cc.o" "gcc" "src/CMakeFiles/tenoc_dram.dir/dram/frfcfs.cc.o.d"
  "/root/repo/src/dram/gddr3.cc" "src/CMakeFiles/tenoc_dram.dir/dram/gddr3.cc.o" "gcc" "src/CMakeFiles/tenoc_dram.dir/dram/gddr3.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tenoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
