file(REMOVE_RECURSE
  "CMakeFiles/tenoc_dram.dir/dram/dram_bank.cc.o"
  "CMakeFiles/tenoc_dram.dir/dram/dram_bank.cc.o.d"
  "CMakeFiles/tenoc_dram.dir/dram/dram_channel.cc.o"
  "CMakeFiles/tenoc_dram.dir/dram/dram_channel.cc.o.d"
  "CMakeFiles/tenoc_dram.dir/dram/frfcfs.cc.o"
  "CMakeFiles/tenoc_dram.dir/dram/frfcfs.cc.o.d"
  "CMakeFiles/tenoc_dram.dir/dram/gddr3.cc.o"
  "CMakeFiles/tenoc_dram.dir/dram/gddr3.cc.o.d"
  "libtenoc_dram.a"
  "libtenoc_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tenoc_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
