file(REMOVE_RECURSE
  "libtenoc_dram.a"
)
