file(REMOVE_RECURSE
  "libtenoc_area.a"
)
