file(REMOVE_RECURSE
  "CMakeFiles/tenoc_area.dir/area/area_model.cc.o"
  "CMakeFiles/tenoc_area.dir/area/area_model.cc.o.d"
  "libtenoc_area.a"
  "libtenoc_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tenoc_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
