# Empty compiler generated dependencies file for tenoc_area.
# This may be replaced when dependencies are built.
