
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_arbiter.cc" "tests/CMakeFiles/tenoc_tests.dir/test_arbiter.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_arbiter.cc.o.d"
  "/root/repo/tests/test_area.cc" "tests/CMakeFiles/tenoc_tests.dir/test_area.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_area.cc.o.d"
  "/root/repo/tests/test_buffer.cc" "tests/CMakeFiles/tenoc_tests.dir/test_buffer.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_buffer.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/tenoc_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_channel.cc" "tests/CMakeFiles/tenoc_tests.dir/test_channel.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_channel.cc.o.d"
  "/root/repo/tests/test_chip.cc" "tests/CMakeFiles/tenoc_tests.dir/test_chip.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_chip.cc.o.d"
  "/root/repo/tests/test_chip_config.cc" "tests/CMakeFiles/tenoc_tests.dir/test_chip_config.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_chip_config.cc.o.d"
  "/root/repo/tests/test_clock.cc" "tests/CMakeFiles/tenoc_tests.dir/test_clock.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_clock.cc.o.d"
  "/root/repo/tests/test_coalescer.cc" "tests/CMakeFiles/tenoc_tests.dir/test_coalescer.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_coalescer.cc.o.d"
  "/root/repo/tests/test_config.cc" "tests/CMakeFiles/tenoc_tests.dir/test_config.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_config.cc.o.d"
  "/root/repo/tests/test_config_loader.cc" "tests/CMakeFiles/tenoc_tests.dir/test_config_loader.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_config_loader.cc.o.d"
  "/root/repo/tests/test_dram_bank.cc" "tests/CMakeFiles/tenoc_tests.dir/test_dram_bank.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_dram_bank.cc.o.d"
  "/root/repo/tests/test_dram_channel.cc" "tests/CMakeFiles/tenoc_tests.dir/test_dram_channel.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_dram_channel.cc.o.d"
  "/root/repo/tests/test_flit.cc" "tests/CMakeFiles/tenoc_tests.dir/test_flit.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_flit.cc.o.d"
  "/root/repo/tests/test_ideal_network.cc" "tests/CMakeFiles/tenoc_tests.dir/test_ideal_network.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_ideal_network.cc.o.d"
  "/root/repo/tests/test_inst_source.cc" "tests/CMakeFiles/tenoc_tests.dir/test_inst_source.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_inst_source.cc.o.d"
  "/root/repo/tests/test_kernel_profile.cc" "tests/CMakeFiles/tenoc_tests.dir/test_kernel_profile.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_kernel_profile.cc.o.d"
  "/root/repo/tests/test_mc_node.cc" "tests/CMakeFiles/tenoc_tests.dir/test_mc_node.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_mc_node.cc.o.d"
  "/root/repo/tests/test_mesh_network.cc" "tests/CMakeFiles/tenoc_tests.dir/test_mesh_network.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_mesh_network.cc.o.d"
  "/root/repo/tests/test_metrics.cc" "tests/CMakeFiles/tenoc_tests.dir/test_metrics.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_metrics.cc.o.d"
  "/root/repo/tests/test_mshr.cc" "tests/CMakeFiles/tenoc_tests.dir/test_mshr.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_mshr.cc.o.d"
  "/root/repo/tests/test_network_soak.cc" "tests/CMakeFiles/tenoc_tests.dir/test_network_soak.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_network_soak.cc.o.d"
  "/root/repo/tests/test_openloop.cc" "tests/CMakeFiles/tenoc_tests.dir/test_openloop.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_openloop.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/tenoc_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_router.cc" "tests/CMakeFiles/tenoc_tests.dir/test_router.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_router.cc.o.d"
  "/root/repo/tests/test_routing.cc" "tests/CMakeFiles/tenoc_tests.dir/test_routing.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_routing.cc.o.d"
  "/root/repo/tests/test_simt_core.cc" "tests/CMakeFiles/tenoc_tests.dir/test_simt_core.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_simt_core.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/tenoc_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_topology.cc" "tests/CMakeFiles/tenoc_tests.dir/test_topology.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_topology.cc.o.d"
  "/root/repo/tests/test_vc_map.cc" "tests/CMakeFiles/tenoc_tests.dir/test_vc_map.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_vc_map.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/tenoc_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/tenoc_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tenoc_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tenoc_area.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tenoc_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tenoc_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tenoc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tenoc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tenoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
