# Empty dependencies file for tenoc_tests.
# This may be replaced when dependencies are built.
