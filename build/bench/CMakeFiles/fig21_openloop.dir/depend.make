# Empty dependencies file for fig21_openloop.
# This may be replaced when dependencies are built.
