file(REMOVE_RECURSE
  "CMakeFiles/fig21_openloop.dir/fig21_openloop.cc.o"
  "CMakeFiles/fig21_openloop.dir/fig21_openloop.cc.o.d"
  "fig21_openloop"
  "fig21_openloop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_openloop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
