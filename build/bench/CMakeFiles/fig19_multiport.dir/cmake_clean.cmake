file(REMOVE_RECURSE
  "CMakeFiles/fig19_multiport.dir/fig19_multiport.cc.o"
  "CMakeFiles/fig19_multiport.dir/fig19_multiport.cc.o.d"
  "fig19_multiport"
  "fig19_multiport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_multiport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
