# Empty dependencies file for fig19_multiport.
# This may be replaced when dependencies are built.
