# Empty compiler generated dependencies file for fig16_placement.
# This may be replaced when dependencies are built.
