file(REMOVE_RECURSE
  "CMakeFiles/fig16_placement.dir/fig16_placement.cc.o"
  "CMakeFiles/fig16_placement.dir/fig16_placement.cc.o.d"
  "fig16_placement"
  "fig16_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
