file(REMOVE_RECURSE
  "CMakeFiles/fig06_limit_study.dir/fig06_limit_study.cc.o"
  "CMakeFiles/fig06_limit_study.dir/fig06_limit_study.cc.o.d"
  "fig06_limit_study"
  "fig06_limit_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_limit_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
