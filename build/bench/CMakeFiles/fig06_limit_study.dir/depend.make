# Empty dependencies file for fig06_limit_study.
# This may be replaced when dependencies are built.
