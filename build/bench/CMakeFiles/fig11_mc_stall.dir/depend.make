# Empty dependencies file for fig11_mc_stall.
# This may be replaced when dependencies are built.
