file(REMOVE_RECURSE
  "CMakeFiles/fig11_mc_stall.dir/fig11_mc_stall.cc.o"
  "CMakeFiles/fig11_mc_stall.dir/fig11_mc_stall.cc.o.d"
  "fig11_mc_stall"
  "fig11_mc_stall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_mc_stall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
