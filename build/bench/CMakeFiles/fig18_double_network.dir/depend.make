# Empty dependencies file for fig18_double_network.
# This may be replaced when dependencies are built.
