file(REMOVE_RECURSE
  "CMakeFiles/fig18_double_network.dir/fig18_double_network.cc.o"
  "CMakeFiles/fig18_double_network.dir/fig18_double_network.cc.o.d"
  "fig18_double_network"
  "fig18_double_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_double_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
