file(REMOVE_RECURSE
  "CMakeFiles/calibration_matrix.dir/calibration_matrix.cc.o"
  "CMakeFiles/calibration_matrix.dir/calibration_matrix.cc.o.d"
  "calibration_matrix"
  "calibration_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibration_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
