# Empty compiler generated dependencies file for calibration_matrix.
# This may be replaced when dependencies are built.
