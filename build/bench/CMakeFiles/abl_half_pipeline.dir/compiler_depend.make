# Empty compiler generated dependencies file for abl_half_pipeline.
# This may be replaced when dependencies are built.
