file(REMOVE_RECURSE
  "CMakeFiles/abl_half_pipeline.dir/abl_half_pipeline.cc.o"
  "CMakeFiles/abl_half_pipeline.dir/abl_half_pipeline.cc.o.d"
  "abl_half_pipeline"
  "abl_half_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_half_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
