# Empty dependencies file for fig02_design_space.
# This may be replaced when dependencies are built.
