file(REMOVE_RECURSE
  "CMakeFiles/fig02_design_space.dir/fig02_design_space.cc.o"
  "CMakeFiles/fig02_design_space.dir/fig02_design_space.cc.o.d"
  "fig02_design_space"
  "fig02_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
