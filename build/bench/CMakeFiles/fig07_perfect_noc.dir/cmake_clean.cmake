file(REMOVE_RECURSE
  "CMakeFiles/fig07_perfect_noc.dir/fig07_perfect_noc.cc.o"
  "CMakeFiles/fig07_perfect_noc.dir/fig07_perfect_noc.cc.o.d"
  "fig07_perfect_noc"
  "fig07_perfect_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_perfect_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
