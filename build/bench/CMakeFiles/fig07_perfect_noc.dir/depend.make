# Empty dependencies file for fig07_perfect_noc.
# This may be replaced when dependencies are built.
