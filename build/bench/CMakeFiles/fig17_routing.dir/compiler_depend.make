# Empty compiler generated dependencies file for fig17_routing.
# This may be replaced when dependencies are built.
