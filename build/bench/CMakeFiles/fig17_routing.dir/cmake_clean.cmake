file(REMOVE_RECURSE
  "CMakeFiles/fig17_routing.dir/fig17_routing.cc.o"
  "CMakeFiles/fig17_routing.dir/fig17_routing.cc.o.d"
  "fig17_routing"
  "fig17_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
