file(REMOVE_RECURSE
  "CMakeFiles/abl_interleave.dir/abl_interleave.cc.o"
  "CMakeFiles/abl_interleave.dir/abl_interleave.cc.o.d"
  "abl_interleave"
  "abl_interleave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_interleave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
