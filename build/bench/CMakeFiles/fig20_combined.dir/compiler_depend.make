# Empty compiler generated dependencies file for fig20_combined.
# This may be replaced when dependencies are built.
