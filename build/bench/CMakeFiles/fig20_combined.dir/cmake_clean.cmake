file(REMOVE_RECURSE
  "CMakeFiles/fig20_combined.dir/fig20_combined.cc.o"
  "CMakeFiles/fig20_combined.dir/fig20_combined.cc.o.d"
  "fig20_combined"
  "fig20_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
