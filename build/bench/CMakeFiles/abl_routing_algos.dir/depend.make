# Empty dependencies file for abl_routing_algos.
# This may be replaced when dependencies are built.
