
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_routing_algos.cc" "bench/CMakeFiles/abl_routing_algos.dir/abl_routing_algos.cc.o" "gcc" "bench/CMakeFiles/abl_routing_algos.dir/abl_routing_algos.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tenoc_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tenoc_area.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tenoc_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tenoc_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tenoc_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tenoc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tenoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
