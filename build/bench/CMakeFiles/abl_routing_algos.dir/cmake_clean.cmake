file(REMOVE_RECURSE
  "CMakeFiles/abl_routing_algos.dir/abl_routing_algos.cc.o"
  "CMakeFiles/abl_routing_algos.dir/abl_routing_algos.cc.o.d"
  "abl_routing_algos"
  "abl_routing_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_routing_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
