# Empty dependencies file for abl_vc_buffers.
# This may be replaced when dependencies are built.
