file(REMOVE_RECURSE
  "CMakeFiles/abl_vc_buffers.dir/abl_vc_buffers.cc.o"
  "CMakeFiles/abl_vc_buffers.dir/abl_vc_buffers.cc.o.d"
  "abl_vc_buffers"
  "abl_vc_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_vc_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
