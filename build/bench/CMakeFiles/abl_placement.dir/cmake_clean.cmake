file(REMOVE_RECURSE
  "CMakeFiles/abl_placement.dir/abl_placement.cc.o"
  "CMakeFiles/abl_placement.dir/abl_placement.cc.o.d"
  "abl_placement"
  "abl_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
