file(REMOVE_RECURSE
  "CMakeFiles/tab06_area.dir/tab06_area.cc.o"
  "CMakeFiles/tab06_area.dir/tab06_area.cc.o.d"
  "tab06_area"
  "tab06_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab06_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
