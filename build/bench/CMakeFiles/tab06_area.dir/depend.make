# Empty dependencies file for tab06_area.
# This may be replaced when dependencies are built.
