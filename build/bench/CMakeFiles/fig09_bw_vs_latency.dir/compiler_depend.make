# Empty compiler generated dependencies file for fig09_bw_vs_latency.
# This may be replaced when dependencies are built.
